"""Point-to-point links.

A :class:`Link` is full duplex: it owns two independent
:class:`LinkDirection` objects, each with its own serializer, drop-tail
queue, loss-model state and RNG stream. The directional model is::

    enqueue -> [drop-tail queue] -> serialize (size*8/bandwidth)
            -> loss coin flip -> propagation delay -> deliver

The serializer transmits one packet at a time; queueing delay therefore
emerges naturally when TCP's window exceeds the bottleneck rate, which
is what produces the RTT inflation the paper observes under load
(footnote to Fig. 4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Node
    from repro.net.topology import Network


@dataclass
class LinkStats:
    """Per-direction counters (queried by tests and the NWS monitor)."""

    enqueued_packets: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    dropped_queue_packets: int = 0
    dropped_loss_packets: int = 0
    dropped_down_packets: int = 0
    max_queue_bytes_seen: int = 0
    down_transitions: int = 0

    @property
    def dropped_packets(self) -> int:
        return (
            self.dropped_queue_packets
            + self.dropped_loss_packets
            + self.dropped_down_packets
        )

    @property
    def drop_rate(self) -> float:
        if self.enqueued_packets == 0:
            return 0.0
        return self.dropped_packets / self.enqueued_packets


class LinkDirection:
    """One direction of a full-duplex link.

    The serializer is modelled **analytically**: because transmissions
    are FIFO through a single serializer, every packet's serialize start
    and end are known at enqueue time (``start = max(now, busy_until)``,
    ``end = start + size*8/bandwidth``), so the direction schedules one
    delivery event per packet instead of a serialize-done plus a
    delivery event. The float recurrence is exactly the event-driven
    one — ``end`` equals the time the old per-packet serialize event
    would have fired — so seeded simulations are bit-identical.

    The wire-loss coin flip is deferred from serialize-end to the
    delivery event. Per direction the RNG stream is private and
    deliveries fire in serialize-end order (constant propagation
    delay), so the draw sequence is unchanged; a packet whose
    serialization was cut short by a down transition consumes no draw,
    exactly as before (see :meth:`_deliver`).
    """

    __slots__ = (
        "net",
        "name",
        "src",
        "dst",
        "bandwidth_bps",
        "delay_s",
        "queue_capacity_bytes",
        "_loss_model",
        "_should_drop",
        "_rng",
        "_sim",
        "_dst_receive",
        "_pending",
        "_queued_bytes",
        "_busy_until",
        "_down_times",
        "_last_started",
        "_up",
        "_epoch",
        "stats",
    )

    def __init__(
        self,
        net: "Network",
        name: str,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue_capacity_bytes: int,
        loss_model: LossModel,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        if queue_capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {queue_capacity_bytes}")
        self.net = net
        self.name = name
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_capacity_bytes = queue_capacity_bytes
        self.loss_model = loss_model  # property: also caches _should_drop
        self._rng = net.rng.stream(f"link-loss:{name}")
        self._sim = net.sim  # hot path: skip the net indirection
        self._dst_receive = dst.receive  # hot path: bound once
        # scheduled serializations not yet known to have started:
        # (serialize_start, serialize_end, size, packet_id), FIFO.
        # Entries with start <= now are retired lazily (see _advance).
        self._pending: Deque[tuple] = deque()
        self._queued_bytes = 0
        self._busy_until = 0.0  # when the serializer frees up
        self._down_times: List[float] = []  # one entry per down transition
        self._last_started: Optional[tuple] = None  # most recent retired entry
        self._up = True
        self._epoch = 0  # bumped on every down transition; kills in-flight packets
        self.stats = LinkStats()

    @property
    def loss_model(self) -> LossModel:
        return self._loss_model

    @loss_model.setter
    def loss_model(self, model: LossModel) -> None:
        # Tests swap models on live directions, so the delivery path's
        # cached drop-check must follow. NoLoss consumes no RNG state,
        # so skipping its call entirely keeps seeded runs identical.
        self._loss_model = model
        self._should_drop = None if type(model) is NoLoss else model.should_drop

    # ------------------------------------------------------------------
    # up/down state (fault injection)
    # ------------------------------------------------------------------

    @property
    def up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Administratively raise/drop this direction.

        Dropping the link loses the queue *and* everything already on
        the wire: serializing and propagating packets carry the epoch at
        transmit time and are discarded if the link flapped since.
        """
        if up == self._up:
            return
        self._up = up
        if not up:
            now = self._sim.now
            self._epoch += 1
            self._down_times.append(now)
            self.stats.down_transitions += 1
            self._advance(now)
            # whatever has not started serializing dies right now
            pending = self._pending
            lost = len(pending)
            self.stats.dropped_down_packets += lost
            pending.clear()
            self._queued_bytes = 0
            last = self._last_started
            if last is not None and last[1] > now:
                # a packet is mid-serialization: the event-driven model
                # counted its death when the serializer finished, so
                # keep that instant (and the serializer stays occupied
                # until then, exactly as before)
                self._sim.schedule_at_fast(last[1], self._count_tx_kill, last[3])
                self._last_started = None
                self._busy_until = last[1]
            else:
                self._busy_until = now
            self.net.logger.log(self.name, "link-down", lost)
        else:
            self.net.logger.log(self.name, "link-up", None)

    def _count_tx_kill(self, packet_id: int) -> None:
        self.stats.dropped_down_packets += 1
        self.net.logger.log(self.name, "drop-down", packet_id)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def _advance(self, now: float) -> None:
        """Retire pending entries whose serialization has begun; the
        queue-occupancy accounting only counts not-yet-started packets,
        matching the event-driven model's pop-at-serialize-start."""
        pending = self._pending
        qb = self._queued_bytes
        last = None
        while pending and pending[0][0] <= now:
            last = pending.popleft()
            qb -= last[2]
        self._queued_bytes = qb
        if last is not None:
            self._last_started = last

    def enqueue(self, packet: Packet) -> None:
        """Offer a packet to this direction; may be tail-dropped."""
        stats = self.stats
        stats.enqueued_packets += 1
        if not self._up:
            stats.dropped_down_packets += 1
            self.net.logger.log(self.name, "drop-down", packet.id)
            return
        now = self._sim._now
        pending = self._pending
        if pending and pending[0][0] <= now:
            # _advance, inlined: this runs once per packet in steady
            # state (the previous packet has always started by now)
            qb = self._queued_bytes
            last = None
            while pending and pending[0][0] <= now:
                last = pending.popleft()
                qb -= last[2]
            self._queued_bytes = qb
            self._last_started = last
        size = packet.size_bytes
        queued = self._queued_bytes + size
        if queued > self.queue_capacity_bytes:
            stats.dropped_queue_packets += 1
            self.net.logger.log(self.name, "drop-queue", packet.id)
            return
        self._queued_bytes = queued
        if queued > stats.max_queue_bytes_seen:
            stats.max_queue_bytes_seen = queued
        busy = self._busy_until
        start = busy if busy > now else now
        # keep the exact event-driven float expression: end is the time
        # the old serialize-done event fired
        end = start + size * 8.0 / self.bandwidth_bps
        self._busy_until = end
        pending.append((start, end, size, packet.id))
        # inlined sim.schedule_at_fast: one bare heap entry per packet,
        # and the fire time (end + delay) can never be in the past
        sim = self._sim
        seq = sim._seq
        sim._seq = seq + 1
        heappush(
            sim._heap,
            (end + self.delay_s, seq, self._deliver, (packet, self._epoch, end)),
        )

    def _deliver(self, packet: Packet, epoch: int, serialize_end: float) -> None:
        if epoch == self._epoch:  # no flap since enqueue: the usual case
            # wire loss is sampled for every packet that finished
            # serializing on an up link, delivered or not
            should_drop = self._should_drop
            if should_drop is not None and should_drop(self._rng):
                self.stats.dropped_loss_packets += 1
                self.net.logger.log(self.name, "drop-loss", packet.id)
                return
            if packet.sent_at < 0:
                packet.sent_at = serialize_end
            stats = self.stats
            stats.delivered_packets += 1
            stats.delivered_bytes += packet.size_bytes
            self._dst_receive(packet)
            return
        if self._down_times[epoch] < serialize_end:
            # the first down transition after enqueue cut this packet
            # down while it was still queued (accounted at the flap) or
            # serializing (accounted by _count_tx_kill): no loss draw,
            # nothing left to do — same as the event-driven model
            return
        # it finished serializing before the flap, so it consumed its
        # loss draw and was on the wire when the link went down
        should_drop = self._should_drop
        if should_drop is not None and should_drop(self._rng):
            self.stats.dropped_loss_packets += 1
            self.net.logger.log(self.name, "drop-loss", packet.id)
            return
        if packet.sent_at < 0:
            packet.sent_at = serialize_end
        self.stats.dropped_down_packets += 1
        self.net.logger.log(self.name, "drop-down", packet.id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        self._advance(self._sim.now)
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        self._advance(self._sim.now)
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkDirection {self.name} {self.bandwidth_bps/1e6:.1f}Mbps {self.delay_s*1e3:.1f}ms>"


@dataclass
class Link:
    """A full-duplex link: two independent directions."""

    name: str
    forward: LinkDirection
    reverse: LinkDirection

    @property
    def up(self) -> bool:
        return self.forward.up and self.reverse.up

    def set_up(self, up: bool) -> None:
        """Raise/drop both directions at once (a whole-link flap)."""
        self.forward.set_up(up)
        self.reverse.set_up(up)

    def connects(self, a: str, b: str) -> bool:
        """True if this link joins hosts named ``a`` and ``b`` (either order)."""
        ends = {self.forward.src.name, self.forward.dst.name}
        return ends == {a, b}

    def direction_from(self, node: "Node") -> LinkDirection:
        """The transmit direction whose source is ``node``."""
        if self.forward.src is node:
            return self.forward
        if self.reverse.src is node:
            return self.reverse
        raise ValueError(f"{node!r} is not an endpoint of link {self.name}")

    def other_end(self, node: "Node") -> "Node":
        if self.forward.src is node:
            return self.forward.dst
        if self.reverse.src is node:
            return self.reverse.dst
        raise ValueError(f"{node!r} is not an endpoint of link {self.name}")


def make_link(
    net: "Network",
    a: "Node",
    b: "Node",
    bandwidth_bps: float,
    delay_s: float,
    queue_capacity_bytes: int,
    loss_model: Optional[LossModel] = None,
) -> Link:
    """Construct a full-duplex link between two nodes.

    The loss model applies to **both** directions (independent clones);
    pass ``NoLoss()`` (the default) for clean links.
    """
    base = loss_model if loss_model is not None else NoLoss()
    name = f"{a.name}<->{b.name}"
    fwd = LinkDirection(
        net, f"{a.name}->{b.name}", a, b, bandwidth_bps, delay_s,
        queue_capacity_bytes, base.clone(),
    )
    rev = LinkDirection(
        net, f"{b.name}->{a.name}", b, a, bandwidth_bps, delay_s,
        queue_capacity_bytes, base.clone(),
    )
    return Link(name=name, forward=fwd, reverse=rev)
