"""Point-to-point links.

A :class:`Link` is full duplex: it owns two independent
:class:`LinkDirection` objects, each with its own serializer, drop-tail
queue, loss-model state and RNG stream. The directional model is::

    enqueue -> [drop-tail queue] -> serialize (size*8/bandwidth)
            -> loss coin flip -> propagation delay -> deliver

The serializer transmits one packet at a time; queueing delay therefore
emerges naturally when TCP's window exceeds the bottleneck rate, which
is what produces the RTT inflation the paper observes under load
(footnote to Fig. 4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Optional

from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Node
    from repro.net.topology import Network


@dataclass
class LinkStats:
    """Per-direction counters (queried by tests and the NWS monitor)."""

    enqueued_packets: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    dropped_queue_packets: int = 0
    dropped_loss_packets: int = 0
    max_queue_bytes_seen: int = 0

    @property
    def dropped_packets(self) -> int:
        return self.dropped_queue_packets + self.dropped_loss_packets

    @property
    def drop_rate(self) -> float:
        if self.enqueued_packets == 0:
            return 0.0
        return self.dropped_packets / self.enqueued_packets


class LinkDirection:
    """One direction of a full-duplex link."""

    __slots__ = (
        "net",
        "name",
        "src",
        "dst",
        "bandwidth_bps",
        "delay_s",
        "queue_capacity_bytes",
        "loss_model",
        "_rng",
        "_queue",
        "_queued_bytes",
        "_busy",
        "stats",
    )

    def __init__(
        self,
        net: "Network",
        name: str,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue_capacity_bytes: int,
        loss_model: LossModel,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        if queue_capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {queue_capacity_bytes}")
        self.net = net
        self.name = name
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_capacity_bytes = queue_capacity_bytes
        self.loss_model = loss_model
        self._rng = net.rng.stream(f"link-loss:{name}")
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self.stats = LinkStats()

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Offer a packet to this direction; may be tail-dropped."""
        self.stats.enqueued_packets += 1
        if self._queued_bytes + packet.size_bytes > self.queue_capacity_bytes:
            self.stats.dropped_queue_packets += 1
            self.net.logger.log(self.name, "drop-queue", packet.id)
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if self._queued_bytes > self.stats.max_queue_bytes_seen:
            self.stats.max_queue_bytes_seen = self._queued_bytes
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        self._busy = True
        tx_time = packet.size_bytes * 8.0 / self.bandwidth_bps
        self.net.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        # wire loss is sampled once serialization completes: the packet
        # is "on the wire" and either survives propagation or not
        if self.loss_model.should_drop(self._rng):
            self.stats.dropped_loss_packets += 1
            self.net.logger.log(self.name, "drop-loss", packet.id)
        else:
            if packet.sent_at < 0:
                packet.sent_at = self.net.sim.now
            self.net.sim.schedule(self.delay_s, self._deliver, packet)
        if self._queue:
            self._start_next()
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size_bytes
        self.dst.receive(packet)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkDirection {self.name} {self.bandwidth_bps/1e6:.1f}Mbps {self.delay_s*1e3:.1f}ms>"


@dataclass
class Link:
    """A full-duplex link: two independent directions."""

    name: str
    forward: LinkDirection
    reverse: LinkDirection

    def direction_from(self, node: "Node") -> LinkDirection:
        """The transmit direction whose source is ``node``."""
        if self.forward.src is node:
            return self.forward
        if self.reverse.src is node:
            return self.reverse
        raise ValueError(f"{node!r} is not an endpoint of link {self.name}")

    def other_end(self, node: "Node") -> "Node":
        if self.forward.src is node:
            return self.forward.dst
        if self.reverse.src is node:
            return self.reverse.dst
        raise ValueError(f"{node!r} is not an endpoint of link {self.name}")


def make_link(
    net: "Network",
    a: "Node",
    b: "Node",
    bandwidth_bps: float,
    delay_s: float,
    queue_capacity_bytes: int,
    loss_model: Optional[LossModel] = None,
) -> Link:
    """Construct a full-duplex link between two nodes.

    The loss model applies to **both** directions (independent clones);
    pass ``NoLoss()`` (the default) for clean links.
    """
    base = loss_model if loss_model is not None else NoLoss()
    name = f"{a.name}<->{b.name}"
    fwd = LinkDirection(
        net, f"{a.name}->{b.name}", a, b, bandwidth_bps, delay_s,
        queue_capacity_bytes, base.clone(),
    )
    rev = LinkDirection(
        net, f"{b.name}->{a.name}", b, a, bandwidth_bps, delay_s,
        queue_capacity_bytes, base.clone(),
    )
    return Link(name=name, forward=fwd, reverse=rev)
