"""Static shortest-path routing.

Routes are computed once, after the topology is built, with Dijkstra
over a networkx graph weighted by propagation delay — the analogue of
the fixed "default path" the paper is careful not to disturb ("we do
not even alter the default path through the network"). LSL never
changes these routes; it only adds a depot *on* them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import Link
    from repro.net.node import Node


class NoRouteError(RuntimeError):
    """Raised when the topology graph is disconnected."""


def compute_static_routes(
    nodes: Dict[str, "Node"], links: Iterable["Link"]
) -> None:
    """Populate ``node.routes`` for every node, in place.

    For each (source, destination) pair the next-hop link follows the
    minimum-propagation-delay path; ties broken deterministically by
    neighbour name so runs are reproducible.
    """
    graph = nx.Graph()
    graph.add_nodes_from(sorted(nodes))
    link_by_pair: Dict[tuple, "Link"] = {}
    for link in links:
        a, b = link.forward.src.name, link.forward.dst.name
        graph.add_edge(a, b, weight=link.forward.delay_s)
        link_by_pair[(a, b)] = link
        link_by_pair[(b, a)] = link

    # all-pairs Dijkstra; paths[src][dst] is the node sequence
    paths = dict(nx.all_pairs_dijkstra_path(graph, weight="weight"))

    for src_name, node in nodes.items():
        node.routes.clear()
        node._tx_dirs.clear()  # resolved directions follow the routes
        by_dst = paths.get(src_name, {})
        for dst_name in nodes:
            if dst_name == src_name:
                continue
            path = by_dst.get(dst_name)
            if path is None:
                continue  # unreachable: lookups will fail loudly at send time
            next_hop = path[1]
            node.routes[dst_name] = link_by_pair[(src_name, next_hop)]


def path_between(
    nodes: Dict[str, "Node"], links: Iterable["Link"], src: str, dst: str
) -> list:
    """Return the hostname sequence of the routed path (for tests/UI)."""
    graph = nx.Graph()
    graph.add_nodes_from(sorted(nodes))
    for link in links:
        graph.add_edge(
            link.forward.src.name, link.forward.dst.name, weight=link.forward.delay_s
        )
    try:
        return nx.dijkstra_path(graph, src, dst, weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise NoRouteError(f"no route {src} -> {dst}") from exc
