"""Topology builder: the ``Network`` object.

``Network`` is the root object experiments interact with: it owns the
simulator, the RNG registry, the logger, all nodes and links. Typical
use::

    net = Network(seed=7)
    a = net.add_host("ucsb")
    r = net.add_router("denver-pop")
    b = net.add_host("uiuc")
    net.add_link("ucsb", "denver-pop", bandwidth_bps=100e6, delay_ms=14)
    net.add_link("denver-pop", "uiuc", bandwidth_bps=100e6, delay_ms=16)
    net.finalize()          # computes static routes
    net.sim.run()
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.link import Link, make_link
from repro.net.loss import LossModel
from repro.net.node import Host, Node, Router
from repro.net.routing import compute_static_routes, path_between
from repro.sim import RngRegistry, SimLogger, Simulator
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Default router queue: 256 full-size packets' worth, a typical
#: early-2000s WAN interface buffer.
DEFAULT_QUEUE_BYTES = 256 * 1500


class Network:
    """A simulated network: nodes + links + the simulation kernel."""

    def __init__(self, seed: int = 0, log_enabled: bool = False) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.logger = SimLogger(self.sim, enabled=log_enabled)
        #: The observability plane. Defaults to the shared disabled
        #: instance; ``Telemetry(...).attach(net)`` swaps in a live one.
        self.telemetry: Telemetry = NULL_TELEMETRY
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        return self._add_node(Host(self, name))

    def add_router(self, name: str) -> Router:
        return self._add_node(Router(self, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._finalized = False
        return node

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay_ms: float,
        loss: Optional[LossModel] = None,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
    ) -> Link:
        """Create a full-duplex link between named nodes."""
        na, nb = self.nodes[a], self.nodes[b]
        link = make_link(
            self, na, nb, bandwidth_bps, delay_ms / 1e3, queue_bytes, loss
        )
        na.attach_link(link)
        nb.attach_link(link)
        self.links.append(link)
        self._finalized = False
        return link

    def finalize(self) -> None:
        """Compute static routes. Must be called before traffic flows."""
        compute_static_routes(self.nodes, self.links)
        self._finalized = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name!r} is a {type(node).__name__}, not a Host")
        return node

    def link_between(self, a: str, b: str) -> Link:
        """The (single) link joining nodes ``a`` and ``b``."""
        for link in self.links:
            if link.connects(a, b):
                return link
        raise KeyError(f"no link between {a!r} and {b!r}")

    def routed_path(self, src: str, dst: str) -> list:
        """Hostname sequence of the current route from src to dst."""
        return path_between(self.nodes, self.links, src, dst)

    def path_rtt_s(self, src: str, dst: str) -> float:
        """Two-way propagation delay along the routed path (no queueing)."""
        path = self.routed_path(src, dst)
        one_way = 0.0
        for a, b in zip(path, path[1:]):
            link = self.nodes[a].links[b]
            one_way += link.direction_from(self.nodes[a]).delay_s
        return 2.0 * one_way

    def path_bottleneck_bps(self, src: str, dst: str) -> float:
        """Minimum link bandwidth along the routed path."""
        path = self.routed_path(src, dst)
        return min(
            self.nodes[a].links[b].direction_from(self.nodes[a]).bandwidth_bps
            for a, b in zip(path, path[1:])
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"
