"""Network-layer packet.

A :class:`Packet` is what travels over links: a source/destination
address pair, a protocol tag, a payload object owned by the transport
layer (for TCP, a :class:`repro.tcp.segment.Segment`), and the wire
size in bytes used for serialization-delay and queue accounting.

The payload's *content bytes* are not materialized — TCP tracks byte
ranges, and applications that need real data integrity attach it at the
session layer — so a 512 MB transfer costs memory proportional to the
number of in-flight segments, not to the transfer size.
"""

from __future__ import annotations

import itertools
from typing import Any

#: Protocol tag for TCP payloads (the only transport in this repo, but
#: the field keeps the door open for UDP-style probes).
PROTO_TCP = "tcp"

#: Fixed per-packet header overhead in bytes (IP 20 + TCP 20, matching
#: the paper's Linux 2.4 stack without options on data segments).
IP_HEADER_BYTES = 20

_packet_ids = itertools.count(1)


class Packet:
    """A packet in flight. Mutable ``hops`` supports TTL-style loop guards."""

    __slots__ = ("id", "src", "dst", "protocol", "payload", "size_bytes", "hops", "sent_at")

    def __init__(
        self,
        src: str,
        dst: str,
        protocol: str,
        payload: Any,
        size_bytes: int,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.size_bytes = size_bytes
        self.hops = 0
        self.sent_at: float = -1.0  # stamped by the first link, for tracing

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.id} {self.src}->{self.dst} {self.protocol} "
            f"{self.size_bytes}B {self.payload!r}>"
        )


# -- pooling ---------------------------------------------------------------
#
# Bulk runs create one Packet per segment (hundreds of thousands per
# 64 MB transfer) and drop it microseconds later, so allocation and GC
# churn dominate the constructor. Consumers that *know* a packet is
# dead (the TCP stack, once it has extracted the segment) hand it back
# via :func:`recycle_packet`; producers allocate through
# :func:`acquire_packet`. A recycled packet is indistinguishable from a
# fresh one — it gets a new id from the same global counter — so pooled
# and unpooled runs are bit-identical. Packets dropped in the network
# (loss, queue overflow, link down) are simply never recycled; the pool
# refills lazily from fresh allocations.

_POOL_MAX = 512
_pool: list = []


def acquire_packet(
    src: str, dst: str, protocol: str, payload: Any, size_bytes: int
) -> Packet:
    """A :class:`Packet`, recycled when possible."""
    pool = _pool
    if pool:
        p = pool.pop()
        p.id = next(_packet_ids)
        p.src = src
        p.dst = dst
        p.protocol = protocol
        p.payload = payload
        p.size_bytes = size_bytes
        p.hops = 0
        p.sent_at = -1.0
        return p
    return Packet(src, dst, protocol, payload, size_bytes)


def recycle_packet(packet: Packet) -> None:
    """Return a dead packet to the pool. The caller must hold the only
    live reference (nothing may touch the object afterwards)."""
    if len(_pool) < _POOL_MAX:
        packet.payload = None  # drop the segment reference for GC
        _pool.append(packet)
