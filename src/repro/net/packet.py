"""Network-layer packet.

A :class:`Packet` is what travels over links: a source/destination
address pair, a protocol tag, a payload object owned by the transport
layer (for TCP, a :class:`repro.tcp.segment.Segment`), and the wire
size in bytes used for serialization-delay and queue accounting.

The payload's *content bytes* are not materialized — TCP tracks byte
ranges, and applications that need real data integrity attach it at the
session layer — so a 512 MB transfer costs memory proportional to the
number of in-flight segments, not to the transfer size.
"""

from __future__ import annotations

import itertools
from typing import Any

#: Protocol tag for TCP payloads (the only transport in this repo, but
#: the field keeps the door open for UDP-style probes).
PROTO_TCP = "tcp"

#: Fixed per-packet header overhead in bytes (IP 20 + TCP 20, matching
#: the paper's Linux 2.4 stack without options on data segments).
IP_HEADER_BYTES = 20

_packet_ids = itertools.count(1)


class Packet:
    """A packet in flight. Mutable ``hops`` supports TTL-style loop guards."""

    __slots__ = ("id", "src", "dst", "protocol", "payload", "size_bytes", "hops", "sent_at")

    def __init__(
        self,
        src: str,
        dst: str,
        protocol: str,
        payload: Any,
        size_bytes: int,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.size_bytes = size_bytes
        self.hops = 0
        self.sent_at: float = -1.0  # stamped by the first link, for tracing

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.id} {self.src}->{self.dst} {self.protocol} "
            f"{self.size_bytes}B {self.payload!r}>"
        )
