"""Packet network substrate.

Models the pieces of an IP network that matter to TCP dynamics:

- full-duplex point-to-point **links** with a serialization rate,
  propagation delay, finite drop-tail queue and a pluggable stochastic
  loss model (:mod:`repro.net.link`, :mod:`repro.net.loss`);
- **hosts** that terminate transport protocols and **routers** that
  forward by destination using static shortest-path routes computed
  with networkx (:mod:`repro.net.node`, :mod:`repro.net.routing`);
- a **topology builder** that wires it all to a simulator
  (:mod:`repro.net.topology`).

Addresses are plain strings (hostnames); there is no fragmentation —
transport layers are expected to respect the path MTU via their MSS,
as real TCP does with path-MTU discovery.
"""

from repro.net.address import Endpoint
from repro.net.packet import Packet, PROTO_TCP
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.link import Link, LinkDirection, LinkStats
from repro.net.node import Host, Node, ProtocolHandler, Router
from repro.net.routing import NoRouteError, compute_static_routes
from repro.net.topology import Network

__all__ = [
    "Endpoint",
    "Packet",
    "PROTO_TCP",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "Link",
    "LinkDirection",
    "LinkStats",
    "Node",
    "Host",
    "Router",
    "ProtocolHandler",
    "compute_static_routes",
    "NoRouteError",
    "Network",
]
