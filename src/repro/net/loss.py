"""Stochastic packet-loss models.

The paper's wide-area paths see sporadic, roughly independent losses
(congestion on shared Abilene segments), while its 802.11b edge link
sees *bursty* losses. We provide both:

- :class:`BernoulliLoss` — i.i.d. drop with probability ``p``; the
  regime assumed by the Mathis throughput model the analysis leans on.
- :class:`GilbertElliottLoss` — two-state Markov chain (good/bad) with
  per-state drop probabilities; the standard model for wireless burst
  loss.
- :class:`NoLoss` — the zero-loss baseline.

Models are deliberately stateful-per-direction: each link direction
owns one instance plus its own RNG stream, so loss processes on
different links are independent and reproducible.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable


@runtime_checkable
class LossModel(Protocol):
    """Interface: decide whether the next packet is dropped."""

    def should_drop(self, rng: random.Random) -> bool:
        """Return True to drop the packet about to enter the wire."""
        ...

    def clone(self) -> "LossModel":
        """Fresh instance with the same parameters and reset state
        (each link direction must own independent state)."""
        ...


class NoLoss:
    """Never drops. Useful as an explicit baseline."""

    def should_drop(self, rng: random.Random) -> bool:
        return False

    def clone(self) -> "NoLoss":
        return NoLoss()

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss:
    """Independent drop with fixed probability ``p``."""

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not (0.0 <= p < 1.0):
            raise ValueError(f"loss probability must be in [0,1), got {p}")
        self.p = p

    def should_drop(self, rng: random.Random) -> bool:
        return self.p > 0.0 and rng.random() < self.p

    def clone(self) -> "BernoulliLoss":
        return BernoulliLoss(self.p)

    def __repr__(self) -> str:
        return f"BernoulliLoss(p={self.p})"


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) burst-loss model.

    Parameters
    ----------
    p_gb, p_bg:
        Transition probabilities good→bad and bad→good, evaluated per
        packet. Mean burst length is ``1 / p_bg`` packets.
    loss_good, loss_bad:
        Drop probability while in each state.
    """

    __slots__ = ("p_gb", "p_bg", "loss_good", "loss_bad", "in_bad")

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, v in (("p_gb", p_gb), ("p_bg", p_bg)):
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0,1], got {v}")
        for name, v in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0,1], got {v}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.in_bad = False

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average drop probability of the chain."""
        denom = self.p_gb + self.p_bg
        if denom == 0.0:
            return self.loss_bad if self.in_bad else self.loss_good
        frac_bad = self.p_gb / denom
        return frac_bad * self.loss_bad + (1.0 - frac_bad) * self.loss_good

    def should_drop(self, rng: random.Random) -> bool:
        # advance the chain, then sample the per-state loss
        if self.in_bad:
            if rng.random() < self.p_bg:
                self.in_bad = False
        else:
            if rng.random() < self.p_gb:
                self.in_bad = True
        p = self.loss_bad if self.in_bad else self.loss_good
        return p > 0.0 and rng.random() < p

    def clone(self) -> "GilbertElliottLoss":
        return GilbertElliottLoss(self.p_gb, self.p_bg, self.loss_good, self.loss_bad)

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb}, p_bg={self.p_bg}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )
