"""Addressing.

Node addresses are plain strings (hostnames such as ``"ucsb"``); an
:class:`Endpoint` pairs an address with a 16-bit port, exactly like a
``(host, port)`` socket address tuple.
"""

from __future__ import annotations

from typing import NamedTuple


class Endpoint(NamedTuple):
    """A transport endpoint: ``(host, port)``."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


def validate_port(port: int) -> int:
    """Check that ``port`` is a legal TCP port number and return it."""
    if not isinstance(port, int) or not (0 < port < 65536):
        raise ValueError(f"invalid port {port!r}")
    return port
