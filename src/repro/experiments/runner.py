"""Command-line interface: ``repro-lsl``.

Examples::

    repro-lsl list                      # available figures + scenarios
    repro-lsl fig05                     # reproduce one figure
    repro-lsl fig28 --iterations 2 --max-size 16M
    repro-lsl transfer case1 --size 16M --mode both --seeds 5
    repro-lsl failover depot-failure --size 16M --crash-at 1.0
    repro-lsl plan case1 --size 64M     # what would the planner pick?
    repro-lsl workload case1 --rate 1.0 --sessions 10
    repro-lsl trace case1 --size 4M --out traces/   # capture for offline analysis
    repro-lsl collect traces/spans --out traces/fleet   # merge a fleet trace
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.stats import mean
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.scenarios import SCENARIOS
from repro.experiments.transfer import (
    run_direct_transfer,
    run_failover_transfer,
    run_lsl_transfer,
)
from repro.faults import DepotFault, FaultPlan
from repro.logistics.monitor import NetworkMonitor
from repro.logistics.planner import DepotPlanner
from repro.util.units import fmt_bytes, parse_size


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer.

    Rejecting zero at parse time matters because a ``0`` that reaches a
    ``value or default`` truthiness check downstream is silently
    replaced by the default instead of being honored or refused — the
    same bug class as the old ``--seed 0`` regression.
    """
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive (got {value})")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive (got {value})")
    return value


def _apply_scaling(args: argparse.Namespace) -> None:
    # `is None` checks throughout: zero/empty values must be honored
    # (or rejected loudly by the parser), never silently dropped
    if getattr(args, "iterations", None) is not None:
        os.environ["REPRO_ITERATIONS"] = str(args.iterations)
    if getattr(args, "max_size", None) is not None:
        os.environ["REPRO_MAX_SIZE"] = args.max_size
    if getattr(args, "seed", None) is not None:  # seed 0 is a valid seed
        os.environ["REPRO_SEED"] = str(args.seed)


def _apply_telemetry(args: argparse.Namespace) -> None:
    """``--telemetry-out DIR``: every transfer in the command records
    metrics + a Chrome trace (open in https://ui.perfetto.dev) to DIR."""
    outdir = getattr(args, "telemetry_out", None)
    if outdir:
        os.environ["REPRO_TELEMETRY_OUT"] = outdir


def _add_telemetry_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--telemetry-out", type=str, default=None, metavar="DIR",
        help="write per-transfer metrics JSON and Chrome trace-event "
        "files (Perfetto/chrome://tracing) into DIR",
    )


def cmd_list(_: argparse.Namespace) -> int:
    print("figures:")
    for name in ALL_FIGURES:
        print(f"  {name}")
    print("scenarios:")
    for name, factory in SCENARIOS.items():
        print(f"  {name}: {factory().description}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    _apply_scaling(args)
    _apply_telemetry(args)
    fn = ALL_FIGURES[args.figure]
    result = fn()
    print(result)
    return 0


def cmd_transfer(args: argparse.Namespace) -> int:
    _apply_telemetry(args)
    if args.routes is not None:
        return _cmd_transfer_striped(args)
    if args.transport == "sockets":
        return _cmd_transfer_sockets(args)
    scenario = SCENARIOS[args.scenario]()
    size = parse_size(args.size)
    seeds = range(args.seeds)
    rows = []
    if args.mode in ("direct", "both"):
        tp = [
            run_direct_transfer(
                scenario, size, seed=s, payload=args.payload
            ).throughput_mbps
            for s in seeds
        ]
        rows.append(("direct", mean(tp)))
    if args.mode in ("lsl", "both"):
        tp = [
            run_lsl_transfer(
                scenario, size, seed=s, payload=args.payload
            ).throughput_mbps
            for s in seeds
        ]
        rows.append(("lsl", mean(tp)))
    print(f"{scenario.name} @ {fmt_bytes(size)} ({args.seeds} runs):")
    for mode, mbps in rows:
        print(f"  {mode:>6}: {mbps:.2f} Mbit/s")
    if len(rows) == 2 and rows[0][1] > 0:
        print(f"  gain: {100.0 * (rows[1][1] / rows[0][1] - 1.0):+.0f}%")
    return 0


def _cmd_transfer_striped(args: argparse.Namespace) -> int:
    """``transfer --routes N``: stripe across N sublinks at once.

    Sim transport deals stripes across the scenario's failover ladder
    (``--replan`` adds the online re-planner); sockets transport runs
    the real multipath stack on loopback, the first ``--depots`` routes
    each through their own ``lsd``.
    """
    size = parse_size(args.size)
    if args.transport == "sockets":
        from repro.experiments.socketsrun import run_socket_striped

        r = run_socket_striped(
            size,
            driver=args.driver,
            routes=args.routes,
            depots=min(args.depots, args.routes),
            redundancy=args.redundancy,
        )
        verdict = "complete" if r.completed else f"FAILED ({r.error})"
        digest = {True: "ok", False: "MISMATCH", None: "-"}[r.digest_ok]
        print(
            f"sockets/{args.driver} striped @ {fmt_bytes(size)} over "
            f"{args.routes} route(s), redundancy {args.redundancy}: {verdict}"
        )
        print(
            f"  goodput {r.throughput_mbps:.2f} Mbit/s, digest {digest}, "
            f"per-sublink {[fmt_bytes(b) for b in r.per_sublink_bytes]}, "
            f"{r.redundant_stripes} redundant stripe(s)"
        )
        return 0 if r.completed and r.digest_ok is not False else 1

    from repro.experiments.striped import run_striped_transfer

    scenario = SCENARIOS[args.scenario]()
    seeds = range(args.seeds)
    results = [
        run_striped_transfer(
            scenario,
            size,
            n_routes=args.routes,
            redundancy=args.redundancy,
            replan=args.replan,
            seed=s,
        )
        for s in seeds
    ]
    ok = all(r.completed and r.digest_ok for r in results)
    print(
        f"{scenario.name} striped @ {fmt_bytes(size)} over {args.routes} "
        f"route(s), redundancy {args.redundancy} ({args.seeds} runs):"
    )
    print(
        f"  goodput {mean([r.throughput_mbps for r in results]):.2f} "
        f"Mbit/s, complete+digest ok: {ok}"
    )
    r0 = results[0]
    print(
        f"  per-sublink {[fmt_bytes(b) for b in r0.per_sublink_bytes]}, "
        f"{r0.redundant_stripes} redundant stripe(s), "
        f"{r0.migrations} migration(s), "
        f"{r0.resume_queries} resume round-trip(s)"
    )
    return 0 if ok else 1


def _cmd_transfer_sockets(args: argparse.Namespace) -> int:
    """``transfer --transport sockets``: loopback, real TCP, either driver.

    The scenario's simulated topology cannot be imposed on the kernel's
    loopback path, so only the depot *count* carries over; the point of
    this mode is exercising the actual artifact (client, ``lsd`` chain,
    server) rather than reproducing a figure.
    """
    from repro.experiments.socketsrun import run_socket_transfer

    size = parse_size(args.size)
    results = [
        run_socket_transfer(size, driver=args.driver, depots=args.depots)
        for _ in range(args.seeds)
    ]
    ok = all(r.completed and r.digest_ok for r in results)
    print(
        f"sockets/{args.driver} @ {fmt_bytes(size)} via "
        f"{args.depots} depot(s) ({args.seeds} runs):"
    )
    print(
        f"  goodput {mean([r.throughput_mbps for r in results]):.2f} Mbit/s, "
        f"complete+digest ok: {ok}"
    )
    return 0 if ok else 1


def cmd_failover(args: argparse.Namespace) -> int:
    _apply_telemetry(args)
    import math

    if args.transport == "sockets":
        if args.routes is not None:
            print(
                "error: --routes with real sockets lives under "
                "'transfer --transport sockets --routes N'",
                file=sys.stderr,
            )
            return 2
        return _cmd_failover_sockets(args)
    scenario = SCENARIOS[args.scenario]()
    size = parse_size(args.size)
    if size <= 0:
        print("error: --size must be positive", file=sys.stderr)
        return 2
    plan = None
    if args.restart_after is not None and args.crash_at is None:
        print("error: --restart-after requires --crash-at", file=sys.stderr)
        return 2
    if args.crash_at is not None:
        if not scenario.depots:
            print(f"error: scenario {scenario.name} has no depot to crash",
                  file=sys.stderr)
            return 2
        outage = args.restart_after if args.restart_after is not None else math.inf
        try:
            plan = FaultPlan.of(
                DepotFault(scenario.depots[0], args.crash_at, outage)
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.routes is not None:
        return _cmd_failover_striped(args, scenario, size, plan)
    r = run_failover_transfer(scenario, size, fault_plan=plan, seed=args.seed)
    verdict = "complete" if r.completed else f"FAILED ({r.error})"
    digest = {True: "ok", False: "MISMATCH", None: "-"}[r.digest_ok]
    print(f"{scenario.name} @ {fmt_bytes(size)}: {verdict}")
    print(
        f"  goodput {r.throughput_mbps:.2f} Mbit/s over {r.duration_s:.2f}s, "
        f"{r.attempts} attempt(s), {r.failovers} failover(s), digest {digest}"
    )
    return 0 if r.completed and r.digest_ok is not False else 1


def _cmd_failover_striped(args, scenario, size, plan) -> int:
    """``failover --routes N``: survive the crash by striping instead
    of serial rebinding — with ``--redundancy duplicate-1`` the session
    completes with zero negotiated-resume round-trips."""
    from repro.experiments.striped import run_striped_transfer

    r = run_striped_transfer(
        scenario,
        size,
        n_routes=args.routes,
        redundancy=args.redundancy,
        fault_plan=plan,
        seed=args.seed,
    )
    verdict = "complete" if r.completed else f"FAILED ({r.error})"
    digest = {True: "ok", False: "MISMATCH", None: "-"}[r.digest_ok]
    print(
        f"{scenario.name} striped @ {fmt_bytes(size)} over {args.routes} "
        f"route(s), redundancy {args.redundancy}: {verdict}"
    )
    print(
        f"  goodput {r.throughput_mbps:.2f} Mbit/s over {r.duration_s:.2f}s, "
        f"digest {digest}, {r.redundant_stripes} redundant stripe(s), "
        f"{r.redeals} re-deal(s), {r.resume_queries} resume round-trip(s)"
    )
    return 0 if r.completed and r.digest_ok is not False else 1


def _cmd_failover_sockets(args: argparse.Namespace) -> int:
    """``failover --transport sockets``: crash a real depot mid-relay.

    The primary ``lsd`` is killed (live relays reset) once the server
    has received ``--crash-frac`` of the payload; the client rebinds
    through a backup depot with a negotiated resume. ``--crash-at`` /
    ``--restart-after`` are simulator-clock knobs and do not apply.
    """
    from repro.experiments.socketsrun import run_socket_failover

    if args.crash_at is not None or args.restart_after is not None:
        print(
            "error: --crash-at/--restart-after are simulator knobs; "
            "with --transport sockets use --crash-frac",
            file=sys.stderr,
        )
        return 2
    size = parse_size(args.size)
    r = run_socket_failover(
        size, driver=args.driver, crash_after_fraction=args.crash_frac
    )
    verdict = "complete" if r.completed else f"FAILED ({r.error})"
    digest = {True: "ok", False: "MISMATCH", None: "-"}[r.digest_ok]
    print(f"sockets/{args.driver} @ {fmt_bytes(size)}: {verdict}")
    print(
        f"  goodput {r.throughput_mbps:.2f} Mbit/s over {r.duration_s:.2f}s, "
        f"{r.attempts} attempt(s), {r.failovers} failover(s), digest {digest}"
    )
    return 0 if r.completed and r.digest_ok is not False else 1


def cmd_workload(args: argparse.Namespace) -> int:
    _apply_telemetry(args)
    import random

    from repro.experiments.workload import (
        PoissonWorkload,
        run_workload,
        summarize_workload,
    )

    scenario = SCENARIOS[args.scenario]()
    wl = PoissonWorkload(
        rate_per_s=args.rate,
        mean_bytes=parse_size(args.mean_size),
        max_bytes=parse_size(args.max_size),
    )
    specs = wl.generate(args.sessions, random.Random(args.seed))
    outcomes = run_workload(scenario, specs, seed=args.seed)
    summary = summarize_workload(outcomes)
    print(
        f"{scenario.name}: {summary['completed']}/{summary['sessions']} "
        f"sessions complete, mean {summary['mean_mbps']:.2f} Mbit/s, "
        f"Jain fairness {summary['fairness']:.2f}, digests ok: "
        f"{summary['all_digests_ok']}"
    )
    for o in outcomes:
        status = (
            f"done in {o.duration_s:.2f}s ({o.throughput_mbps:.2f} Mbit/s)"
            if o.completed
            else "INCOMPLETE"
        )
        print(f"  t={o.spec.start_s:7.2f}s  {fmt_bytes(o.spec.nbytes):>6}  {status}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    _apply_telemetry(args)
    from repro.analysis.traceio import save_traces

    scenario = SCENARIOS[args.scenario]()
    size = parse_size(args.size)
    traces = []
    for seed in range(args.seeds):
        d = run_direct_transfer(scenario, size, seed=seed)
        l = run_lsl_transfer(scenario, size, seed=seed)
        d.client_trace.label = f"direct-s{seed}"
        l.client_trace.label = f"sublink1-s{seed}"
        traces.append(d.client_trace)
        traces.append(l.client_trace)
        for i, t in enumerate(l.sublink_traces):
            t.label = f"sublink{i + 2}-s{seed}"
            traces.append(t)
    paths = save_traces(traces, args.out)
    print(f"wrote {len(paths)} sender traces to {args.out}/")
    for p in paths:
        print(f"  {p.name}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.telemetry.diagnose import (
        diagnose_directory,
        render_text,
        write_flow_report,
    )
    from repro.telemetry.diagnose.schema import validate_flow_report_file

    if not os.path.isdir(args.telemetry_dir):
        print(f"error: {args.telemetry_dir} is not a directory", file=sys.stderr)
        return 2
    report = diagnose_directory(args.telemetry_dir)
    if not report["runs"]:
        print(
            f"error: no *.trace.json artifacts in {args.telemetry_dir} "
            "(run a transfer with --telemetry-out first)",
            file=sys.stderr,
        )
        return 1
    out = args.out or os.path.join(args.telemetry_dir, "flow_report.json")
    write_flow_report(report, out)
    print(render_text(report), end="")
    print(f"\nwrote {out}")
    problems = validate_flow_report_file(out)
    if problems:
        for p in problems:
            print(f"schema: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    """Merge per-process trace spools into one fleet trace + SLO report.

    Sources are JSONL spill directories (positional, survive SIGKILL)
    and/or live exposition endpoints (``--url``, scraped over HTTP).
    Writes ``fleet_trace.json`` (open in https://ui.perfetto.dev) and
    ``fleet_report.json`` (schema:
    ``docs/schemas/fleet_report.schema.json``) and validates both.
    """
    from repro.telemetry.chrometrace import validate_trace_file
    from repro.telemetry.collect import (
        collect_dir,
        collect_urls,
        write_fleet_artifacts,
    )
    from repro.telemetry.diagnose.schema import validate_flow_report_file

    records = []
    health = None
    for directory in args.span_dirs:
        if not os.path.isdir(directory):
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
        records.extend(collect_dir(directory))
    if args.urls:
        scraped, health = collect_urls(args.urls, timeout=args.timeout)
        records.extend(scraped)
        for h in health:
            if not h["reachable"]:
                print(f"warning: {h['url']} unreachable", file=sys.stderr)
    if not records:
        print(
            "error: no span records found (run with --trace-dir / "
            "--expose-port first, then point collect at the spill "
            "directory or the /spans endpoints)",
            file=sys.stderr,
        )
        return 1
    paths = write_fleet_artifacts(records, args.out, health)
    with open(paths["report"]) as fp:
        report = json.load(fp)
    counts = report["counts"]
    gp = report["goodput"]
    print(
        f"{counts['traces']} trace(s) across "
        f"{len(report['processes'])} process(es): "
        f"{counts['sessions_ok']} ok, {counts['sessions_error']} error, "
        f"{counts['resumes']} resume(s), {counts['takeovers']} takeover(s)"
    )
    if gp["count"]:
        print(
            f"goodput over {gp['count']} session(s): "
            f"p50 {gp['p50_mbps']:.2f} / p99 {gp['p99_mbps']:.2f} / "
            f"mean {gp['mean_mbps']:.2f} Mbit/s"
        )
    print(f"wrote {paths['trace']}")
    print(f"wrote {paths['report']}")
    rc = 0
    trace_problems = validate_trace_file(paths["trace"])
    for problem in trace_problems:
        print(f"trace: {problem}", file=sys.stderr)
        rc = 1
    schema = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))),
        "docs", "schemas", "fleet_report.schema.json",
    )
    if os.path.exists(schema):
        for problem in validate_flow_report_file(paths["report"], schema):
            print(f"schema: {problem}", file=sys.stderr)
            rc = 1
    return rc


def cmd_lsd(args: argparse.Namespace) -> int:
    """Run a live real-socket depot daemon with exposition.

    Serves LSL relaying on ``--port`` and Prometheus-text ``/metrics``
    + ``/healthz`` + ``/events`` on ``--expose-port``. With
    ``--telemetry-dir``, protocol events additionally spill to
    ``lsd-events.jsonl`` there and ``SIGUSR1`` snapshots the counters
    and event ring into the directory without stopping the daemon.

    ``--workers N`` / ``--session-store SPEC`` switch to cluster mode:
    N store-backed depot workers behind one port (``memory`` stores
    stay in-process, ``file:``/``redis://`` spawn worker subprocesses)
    with one aggregated exposition endpoint for the fleet.
    """
    import signal
    import threading

    from repro.sockets.obs import JsonEventLog, install_sigusr1_dump
    from repro.telemetry.tracing import TraceSpool

    events_path = None
    if args.telemetry_dir:
        os.makedirs(args.telemetry_dir, exist_ok=True)
        events_path = os.path.join(args.telemetry_dir, "lsd-events.jsonl")
    event_log = JsonEventLog(capacity=args.event_capacity, path=events_path)
    tracer = None
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)

    cluster_mode = (
        args.workers > 1
        or args.session_store is not None
        or args.session_ttl is not None
    )
    if cluster_mode:
        spec = args.session_store or "memory"
        if spec == "memory":
            from repro.cluster import LocalCluster

            service = LocalCluster(
                args.workers,
                args.host,
                args.port,
                driver=args.driver,
                session_ttl=args.session_ttl,
                observer=event_log.protocol_observer("cluster"),
                trace_dir=args.trace_dir,
            )
        else:
            from repro.cluster import WorkerPool

            service = WorkerPool(
                args.workers,
                args.host,
                args.port,
                store_spec=spec,
                driver=args.driver,
                session_ttl=args.session_ttl,
                trace_dir=args.trace_dir,
            )
        snapshot = service.worker_counters
        banner = (
            f"lsd cluster ({args.driver}, {args.workers} workers, "
            f"store {spec}, {service.strategy}) listening on "
            f"{service.address[0]}:{service.address[1]}"
        )
    else:
        if args.driver == "asyncio":
            from repro.asockets import AsyncDepot as depot_cls
        else:
            from repro.sockets.lsd import ThreadedDepot as depot_cls
        if args.trace_dir:
            tracer = TraceSpool(
                service="lsd",
                path=os.path.join(args.trace_dir, "spans-lsd.jsonl"),
            )
        service = depot_cls(
            args.host, args.port,
            observer=event_log.protocol_observer("depot"),
            tracer=tracer,
        )
        snapshot = service.counters.snapshot
        banner = (
            f"lsd ({args.driver}) listening on "
            f"{service.address[0]}:{service.address[1]}"
        )
    exposer = service.expose(args.host, args.expose_port, event_log=event_log)
    uninstall = None
    if args.telemetry_dir:
        uninstall = install_sigusr1_dump(
            snapshot, args.telemetry_dir, event_log
        )
    print(banner, flush=True)
    print(f"exposition at {exposer.url}/metrics", flush=True)
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    try:
        while not stop.wait(0.2):
            pass
    finally:
        if uninstall is not None:
            uninstall()
        exposer.shutdown()
        service.shutdown()
        event_log.close()
        if tracer is not None:
            tracer.close()
    print("lsd stopped", flush=True)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.scenario]()
    env = scenario.build(seed=0)
    monitor = NetworkMonitor(env.net)
    planner = DepotPlanner(monitor, list(scenario.depots))
    size = parse_size(args.size) if args.size else None
    plans = planner.enumerate_routes(scenario.client, scenario.server, size)
    best = planner.plan(scenario.client, scenario.server, size)
    print(f"candidate routes {scenario.client} -> {scenario.server}:")
    for plan in plans:
        marker = " <= chosen" if plan.hops == best.hops else ""
        extra = (
            f", predicted transfer {plan.predicted_transfer_s:.2f}s"
            if plan.predicted_transfer_s is not None
            else ""
        )
        print(f"  {plan.describe()}{extra}{marker}")
    return 0


def _add_socket_flags(p: argparse.ArgumentParser) -> None:
    """``--transport`` + ``--driver``: run over real loopback sockets
    (threaded or asyncio stack) instead of the simulator."""
    p.add_argument(
        "--transport", choices=("sim", "sockets"), default="sim",
        help="'sim' runs the discrete-event simulator (default); "
        "'sockets' runs the real client/lsd/server stack on loopback",
    )
    p.add_argument(
        "--driver", choices=("threads", "asyncio"), default="threads",
        help="real-socket driver for --transport sockets: "
        "thread-per-connection or single event loop",
    )


def _redundancy_mode(text: str) -> str:
    """Argparse type: a redundancy spec the striping core accepts."""
    from repro.lsl.core import parse_redundancy

    try:
        parse_redundancy(text)
    except Exception as exc:  # noqa: BLE001 - argparse renders message
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _add_striped_flags(
    p: argparse.ArgumentParser, replan: bool = False
) -> None:
    """``--routes N --redundancy MODE``: stripe across several routes."""
    p.add_argument(
        "--routes", type=_positive_int, default=None, metavar="N",
        help="stripe the payload across N concurrent sublinks "
        "(default: one route, no striping)",
    )
    p.add_argument(
        "--redundancy", type=_redundancy_mode, default="none", metavar="MODE",
        help="striped redundancy: 'none', 'duplicate-K' (each stripe "
        "on K+1 distinct sublinks), or 'parity' (XOR block per group)",
    )
    if replan:
        p.add_argument(
            "--replan", action="store_true",
            help="run the online re-planner: probe candidate legs, "
            "re-rank on every sample, migrate sublinks whose route "
            "falls out of the top N",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lsl",
        description="Reproduce the Logistical Session Layer evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and scenarios").set_defaults(
        fn=cmd_list
    )

    p_fig = sub.add_parser("figure", help="reproduce one figure")
    p_fig.add_argument("figure", choices=sorted(ALL_FIGURES))
    p_fig.add_argument("--iterations", type=_positive_int)
    p_fig.add_argument("--max-size", type=str)
    p_fig.add_argument("--seed", type=int)
    _add_telemetry_flag(p_fig)
    p_fig.set_defaults(fn=cmd_figure)

    p_tr = sub.add_parser("transfer", help="run one measured transfer")
    p_tr.add_argument("scenario", choices=sorted(SCENARIOS))
    p_tr.add_argument("--size", default="16M")
    p_tr.add_argument("--mode", choices=("direct", "lsl", "both"), default="both")
    p_tr.add_argument("--seeds", type=_positive_int, default=3)
    p_tr.add_argument(
        "--payload", choices=("virtual", "real"), default="virtual",
        help="'virtual' moves lengths + running checksums only (bytes-"
        "free, scales to arbitrary sizes); 'real' materializes pattern "
        "bytes end to end and verifies the MD5 over actual content",
    )
    _add_socket_flags(p_tr)
    p_tr.add_argument(
        "--depots", type=_positive_int, default=1, metavar="N",
        help="depot chain length for --transport sockets",
    )
    _add_striped_flags(p_tr, replan=True)
    _add_telemetry_flag(p_tr)
    p_tr.set_defaults(fn=cmd_transfer)

    p_fo = sub.add_parser(
        "failover",
        help="fault-tolerant transfer, optionally crashing the primary depot",
    )
    p_fo.add_argument("scenario", choices=sorted(SCENARIOS))
    p_fo.add_argument("--size", default="16M")
    p_fo.add_argument(
        "--crash-at", type=float, default=None, metavar="SECONDS",
        help="crash the first route depot at this sim time",
    )
    p_fo.add_argument(
        "--restart-after", type=float, default=None, metavar="SECONDS",
        help="bring the crashed depot back after this outage",
    )
    p_fo.add_argument("--seed", type=int, default=0)
    _add_socket_flags(p_fo)
    p_fo.add_argument(
        "--crash-frac", type=_positive_float, default=0.25, metavar="FRAC",
        help="with --transport sockets: crash the primary depot once "
        "this fraction of the payload has arrived at the server",
    )
    _add_striped_flags(p_fo)
    _add_telemetry_flag(p_fo)
    p_fo.set_defaults(fn=cmd_failover)

    p_dg = sub.add_parser(
        "diagnose",
        help="explain transfers captured with --telemetry-out: "
        "per-sublink time-in-state, bottleneck, cascade advantage",
    )
    p_dg.add_argument("telemetry_dir", metavar="TELEMETRY-DIR")
    p_dg.add_argument(
        "--out", default=None, metavar="FILE",
        help="machine-readable report path "
        "(default: TELEMETRY-DIR/flow_report.json)",
    )
    p_dg.set_defaults(fn=cmd_diagnose)

    p_lsd = sub.add_parser(
        "lsd",
        help="run a live real-socket depot with /metrics + /healthz",
    )
    p_lsd.add_argument("--host", default="127.0.0.1")
    p_lsd.add_argument("--port", type=int, default=0)
    p_lsd.add_argument(
        "--expose-port", type=int, default=0, metavar="PORT",
        help="HTTP port for /metrics, /healthz, /events (0 = ephemeral)",
    )
    p_lsd.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="spill protocol events to DIR/lsd-events.jsonl; SIGUSR1 "
        "dumps counters + event ring there",
    )
    p_lsd.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="spill distributed-trace spans to DIR (one crash-durable "
        "JSONL per process); merge later with 'repro-lsl collect DIR'",
    )
    p_lsd.add_argument(
        "--event-capacity", type=int, default=1024, metavar="N",
        help="size of the in-memory event ring",
    )
    p_lsd.add_argument(
        "--driver", choices=("threads", "asyncio"), default="threads",
        help="thread-per-connection or single-event-loop depot",
    )
    p_lsd.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="cluster mode: N store-backed depot workers sharing the "
        "listen port (kernel SO_REUSEPORT dispatch, FD-handoff "
        "fallback) with aggregated per-worker /metrics",
    )
    p_lsd.add_argument(
        "--session-store", default=None, metavar="SPEC",
        help="externalize terminal-session state so any worker can "
        "resume any session: 'memory' (in-process), 'file:DIR' "
        "(shared directory, multi-process), or 'redis://host:port'",
    )
    p_lsd.add_argument(
        "--session-ttl", type=_positive_float, default=None,
        metavar="SECONDS",
        help="expire suspended sessions never rebound within this "
        "idle window (default: keep forever)",
    )
    p_lsd.set_defaults(fn=cmd_lsd)

    p_col = sub.add_parser(
        "collect",
        help="merge per-process trace spools into one Perfetto fleet "
        "trace + fleet_report.json with goodput SLO scoring",
    )
    p_col.add_argument(
        "span_dirs", nargs="*", metavar="SPAN-DIR",
        help="directories of *.jsonl span spills (from --trace-dir)",
    )
    p_col.add_argument(
        "--url", dest="urls", action="append", default=[], metavar="URL",
        help="live exposition endpoint to scrape (/spans + /healthz); "
        "repeatable",
    )
    p_col.add_argument(
        "--out", default="fleet", metavar="DIR",
        help="output directory for fleet_trace.json + fleet_report.json",
    )
    p_col.add_argument(
        "--timeout", type=_positive_float, default=2.0, metavar="SECONDS",
        help="per-request HTTP timeout for --url scrapes",
    )
    p_col.set_defaults(fn=cmd_collect)

    p_plan = sub.add_parser("plan", help="show the depot planner's choice")
    p_plan.add_argument("scenario", choices=sorted(SCENARIOS))
    p_plan.add_argument("--size", type=str, default=None)
    p_plan.set_defaults(fn=cmd_plan)

    p_wl = sub.add_parser("workload", help="Poisson session workload")
    p_wl.add_argument("scenario", choices=sorted(SCENARIOS))
    p_wl.add_argument("--rate", type=_positive_float, default=1.0)
    p_wl.add_argument("--sessions", type=int, default=8)
    p_wl.add_argument("--mean-size", default="512K")
    p_wl.add_argument("--max-size", default="4M")
    p_wl.add_argument("--seed", type=int, default=0)
    _add_telemetry_flag(p_wl)
    p_wl.set_defaults(fn=cmd_workload)

    p_tc = sub.add_parser(
        "trace", help="capture sender traces for offline analysis"
    )
    p_tc.add_argument("scenario", choices=sorted(SCENARIOS))
    p_tc.add_argument("--size", default="4M")
    p_tc.add_argument("--seeds", type=_positive_int, default=1)
    p_tc.add_argument("--out", default="traces")
    _add_telemetry_flag(p_tc)
    p_tc.set_defaults(fn=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # allow "repro-lsl fig05" as shorthand for "repro-lsl figure fig05"
    if argv and argv[0] in ALL_FIGURES:
        argv = ["figure", *argv]
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
