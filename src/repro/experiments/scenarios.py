"""The paper's testbed configurations as simulated topologies.

Every scenario is ``client — POP router — server`` with the depot
hanging off the POP ("chosen for its proximity to a POP on the default
path", Fig 2), so the LSL route never diverges from the default path
except for the short spur to the depot — matching the paper's setup.

Calibration targets (from the paper's figures):

===========  ========== ========== ======== ========= ==================
Case         sublink1   sublink2   e2e RTT  sum RTT   direct bulk rate
===========  ========== ========== ======== ========= ==================
1 (UIUC)     ~30 ms     ~33 ms     ~57 ms   ~63 ms    ~11 Mbit/s
2 (UF)       ~33 ms     ~43 ms     ~56 ms   ~76 ms    ~33 Mbit/s
3 (wireless) ~94 ms     ~14 ms     ~104 ms  ~108 ms   ~3.2 Mbit/s
4 (OSU)      ~30 ms     ~24 ms     ~48 ms   ~54 ms    ~26 Mbit/s
===========  ========== ========== ======== ========= ==================

Loss rates are placed predominantly on the client-side wide-area
segment (the shared, congested part of the real paths) and chosen so
that direct-TCP throughput lands near the paper's figures via the
Mathis model; the LSL gain then *emerges* from the TCP dynamics rather
than being dialed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.lsl.depot import Depot
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.topology import Network
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import TcpStack

#: Well-known ports used throughout the experiments.
DEPOT_PORT = 4000
SERVER_PORT = 5000

#: Depot host processing cost: a 2001-era general-purpose machine
#: copying through user space at ~200 MB/s with ~20 us per wakeup.
DEPOT_PER_BYTE_S = 5e-9
DEPOT_FIXED_S = 2e-5
#: Per-session setup at the depot (thread spawn, buffers, resolving the
#: next hop). This is what makes the paper's smallest transfers slower
#: over LSL than direct (Fig 5's 32 KB point).
DEPOT_SESSION_SETUP_S = 0.050

#: Linux 2.4 initializes ssthresh from the route cache; on the paper's
#: shared paths connections start near congestion avoidance almost
#: immediately — visible in Fig 15, where direct TCP needs ~5 s for
#: 4 MB *with zero loss*. 64 KB reproduces that linear window growth.
LINUX24_INITIAL_SSTHRESH = 64 * 1024


def _paper_tcp_options() -> TcpOptions:
    return TcpOptions(initial_ssthresh=LINUX24_INITIAL_SSTHRESH)


@dataclass(frozen=True)
class LinkSpec:
    """One full-duplex link of a scenario topology."""

    a: str
    b: str
    bandwidth_bps: float
    delay_ms: float
    loss: Optional[LossModel] = None
    queue_bytes: Optional[int] = None


@dataclass(frozen=True)
class Scenario:
    """A reproducible experiment configuration."""

    name: str
    description: str
    client: str
    server: str
    depots: Tuple[str, ...]  # depot hostnames, in route order
    links: Tuple[LinkSpec, ...]
    routers: Tuple[str, ...] = ()
    #: Hosts that exist in the topology but are not on the LSL route
    #: (e.g. alternative depots used only by multi-path experiments).
    extra_hosts: Tuple[str, ...] = ()
    #: Depot hosts that are *not* on the primary route but run a depot
    #: daemon anyway — the failover ladder (see ``candidate_routes``).
    backup_depots: Tuple[str, ...] = ()
    tcp_options: TcpOptions = field(default_factory=_paper_tcp_options)
    #: TCP options for the depot's own sockets (None = same as ends).
    #: A depot's memory footprint is its relay buffer plus its socket
    #: buffers; the buffer ablation sweeps both together.
    depot_tcp_options: Optional[TcpOptions] = None
    relay_buffer_bytes: int = 256 * 1024
    depot_per_byte_s: float = DEPOT_PER_BYTE_S
    depot_fixed_s: float = DEPOT_FIXED_S
    depot_session_setup_s: float = DEPOT_SESSION_SETUP_S

    # -- construction -----------------------------------------------------

    def build(self, seed: int) -> "ScenarioEnv":
        """Instantiate a fresh network + stacks + depots for one run."""
        net = Network(seed=seed)
        hosts = {
            self.client,
            self.server,
            *self.depots,
            *self.backup_depots,
            *self.extra_hosts,
        }
        for h in sorted(hosts):
            net.add_host(h)
        for r in self.routers:
            net.add_router(r)
        for spec in self.links:
            kwargs = dict(
                bandwidth_bps=spec.bandwidth_bps,
                delay_ms=spec.delay_ms,
                loss=spec.loss.clone() if spec.loss is not None else None,
            )
            if spec.queue_bytes is not None:
                kwargs["queue_bytes"] = spec.queue_bytes
            net.add_link(spec.a, spec.b, **kwargs)
        net.finalize()
        stacks = {
            h: TcpStack(net.host(h), self.tcp_options) for h in sorted(hosts)
        }
        depots = [
            Depot(
                stacks[h],
                DEPOT_PORT,
                relay_buffer_bytes=self.relay_buffer_bytes,
                fixed_delay_s=self.depot_fixed_s,
                per_byte_cost_s=self.depot_per_byte_s,
                session_setup_delay_s=self.depot_session_setup_s,
                tcp_options=self.depot_tcp_options or self.tcp_options,
            )
            for h in (*self.depots, *self.backup_depots)
        ]
        return ScenarioEnv(self, net, stacks, depots)

    @property
    def lsl_route(self) -> List[Tuple[str, int]]:
        """The loose source route: depots then the server."""
        return [(d, DEPOT_PORT) for d in self.depots] + [
            (self.server, SERVER_PORT)
        ]

    @property
    def candidate_routes(self) -> List[List[Tuple[str, int]]]:
        """Ranked failover ladder: primary route, then one route per
        backup depot, then direct to the server as last resort."""
        routes = [self.lsl_route]
        for backup in self.backup_depots:
            routes.append(
                [(backup, DEPOT_PORT), (self.server, SERVER_PORT)]
            )
        routes.append([(self.server, SERVER_PORT)])
        return routes

    def with_(self, **kwargs) -> "Scenario":
        return replace(self, **kwargs)


@dataclass
class ScenarioEnv:
    """A built scenario: live network, stacks, and depots."""

    scenario: Scenario
    net: Network
    stacks: Dict[str, TcpStack]
    depots: List[Depot]

    @property
    def client_stack(self) -> TcpStack:
        return self.stacks[self.scenario.client]

    @property
    def server_stack(self) -> TcpStack:
        return self.stacks[self.scenario.server]

    def depot_on(self, host: str) -> Depot:
        """The depot daemon running on ``host`` (route or backup)."""
        for depot in self.depots:
            if depot.host_name == host:
                return depot
        raise KeyError(f"no depot on host {host!r}")


# ---------------------------------------------------------------------------
# the paper's four cases
# ---------------------------------------------------------------------------


def case1_uiuc_via_denver(**overrides) -> Scenario:
    """Case 1: UCSB -> UIUC with the depot near the Denver POP.

    Fig 3's RTTs: sublink1 ~30 ms, sublink2 ~33 ms, end-to-end ~57 ms,
    sum ~63 ms (detour costs ~6 ms). Fig 5/6 throughputs: direct TCP
    climbs to ~11 Mbit/s on 64 MB transfers; LSL ~60% higher.
    """
    scenario = Scenario(
        name="case1-uiuc",
        description="UCSB->UIUC via Denver depot (Figs 3, 5, 6, 11-25)",
        client="ucsb",
        server="uiuc",
        depots=("denver-depot",),
        routers=("denver-pop",),
        links=(
            LinkSpec("ucsb", "denver-pop", 100e6, 13.5, BernoulliLoss(2e-4)),
            LinkSpec("denver-pop", "uiuc", 100e6, 15.0, BernoulliLoss(1e-4)),
            LinkSpec("denver-pop", "denver-depot", 622e6, 1.5),
        ),
    )
    return scenario.with_(**overrides) if overrides else scenario


def case2_uf_via_houston(**overrides) -> Scenario:
    """Case 2: UCSB -> UF with the depot near the Houston POP.

    Fig 4's RTTs: sublink1 ~33 ms, sublink2 ~43 ms, end-to-end ~56 ms,
    sum ~76 ms — the detour costs ~20 ms, yet LSL still wins on large
    transfers (Fig 8: direct ~33 Mbit/s at 128 MB, LSL ~52).
    """
    scenario = Scenario(
        name="case2-uf",
        description="UCSB->UF via Houston depot (Figs 4, 7, 8, 26)",
        client="ucsb",
        server="uf",
        depots=("houston-depot",),
        routers=("houston-pop",),
        links=(
            LinkSpec("ucsb", "houston-pop", 155e6, 11.5, BernoulliLoss(6e-5)),
            LinkSpec("houston-pop", "uf", 155e6, 16.5, BernoulliLoss(4e-5)),
            LinkSpec("houston-pop", "houston-depot", 622e6, 5.0),
        ),
    )
    return scenario.with_(**overrides) if overrides else scenario


def case3_wireless_utk(**overrides) -> Scenario:
    """Case 3: UTK -> UCSB where the last hop is 802.11b wireless.

    The depot sits at the UCSB network edge, gatewaying LSL into TCP
    for the wireless client-side (Fig 9: sublink1 [wired, UTK->depot]
    ~94 ms, sublink2 [wireless] ~14 ms). Fig 10: direct ~3.2 Mbit/s on
    large transfers, LSL ~13% better; ironically the *wired* sublink is
    the bottleneck. The wireless link gets bursty Gilbert-Elliott loss.
    """
    scenario = Scenario(
        name="case3-wireless",
        description="UTK->UCSB 802.11b edge via UCSB-edge depot (Figs 9, 10, 27)",
        client="utk",
        server="ucsb-mobile",
        depots=("ucsb-edge-depot",),
        routers=("ucsb-gw",),
        links=(
            LinkSpec("utk", "ucsb-gw", 100e6, 46.0, BernoulliLoss(5e-4)),
            LinkSpec(
                "ucsb-gw",
                "ucsb-mobile",
                6e6,  # 802.11b effective throughput
                6.0,
                # mild bursty residual loss: 802.11 link-layer ARQ hides
                # most radio loss from TCP; what leaks through is rare
                # but clustered
                GilbertElliottLoss(p_gb=0.001, p_bg=0.3, loss_bad=0.02),
                # a 2001 AP queues ~20 frames; a deeper buffer would
                # add >100 ms of bufferbloat at 6 Mbit/s and distort
                # Fig 9's ~14 ms sublink-2 RTT
                queue_bytes=20 * 1500,
            ),
            LinkSpec("ucsb-gw", "ucsb-edge-depot", 622e6, 0.75),
        ),
    )
    return scenario.with_(**overrides) if overrides else scenario


def case4_osu_steady_state(**overrides) -> Scenario:
    """Case 4: UCSB -> OSU, the steady-state study (Figs 28, 29).

    120 iterations per size in the paper, sizes to 512 MB. The path is
    capacity-capped around ~40 Mbit/s so that "larger transfers very
    much seem to have captured the maximum available bandwidth": direct
    approaches ~26 Mbit/s, LSL stays above it at every size without
    converging.
    """
    scenario = Scenario(
        name="case4-osu",
        description="UCSB->OSU steady state via Denver depot (Figs 28, 29)",
        client="ucsb",
        server="osu",
        depots=("denver-depot",),
        routers=("denver-pop",),
        links=(
            LinkSpec("ucsb", "denver-pop", 45e6, 13.5, BernoulliLoss(9e-5)),
            LinkSpec("denver-pop", "osu", 45e6, 10.5, BernoulliLoss(3e-5)),
            LinkSpec("denver-pop", "denver-depot", 622e6, 1.5),
        ),
    )
    return scenario.with_(**overrides) if overrides else scenario


def symmetric_two_segment(
    rtt_ms: float = 60.0,
    bandwidth_bps: float = 100e6,
    loss_client_side: float = 5e-4,
    loss_server_side: float = 5e-4,
    depot_spur_ms: float = 1.0,
    **overrides,
) -> Scenario:
    """A parameterized two-segment path for ablation studies: the depot
    sits exactly at the RTT midpoint unless the delays say otherwise."""
    half = rtt_ms / 4.0  # one-way delay per segment
    scenario = Scenario(
        name="ablation-two-segment",
        description="parameterized two-segment path (ablations)",
        client="src",
        server="dst",
        depots=("mid-depot",),
        routers=("mid-pop",),
        links=(
            LinkSpec("src", "mid-pop", bandwidth_bps, half,
                     BernoulliLoss(loss_client_side) if loss_client_side else None),
            LinkSpec("mid-pop", "dst", bandwidth_bps, half,
                     BernoulliLoss(loss_server_side) if loss_server_side else None),
            LinkSpec("mid-pop", "mid-depot", 622e6, depot_spur_ms),
        ),
    )
    return scenario.with_(**overrides) if overrides else scenario


def depot_failure_scenario(
    case: str = "case1",
    backup_suffix: str = "-b",
    backup_spur_ms: Optional[float] = None,
    **overrides,
) -> Scenario:
    """The depot-failure family: a base case plus a warm spare depot.

    Clones the base scenario's primary depot spur onto a second depot
    host at the same POP (Section VII-A's pool of interchangeable
    depots). Fault plans crash the primary; failover clients climb the
    ladder ``primary -> backup -> direct``.
    """
    base = SCENARIOS[case]()
    primary = base.depots[0]
    spur = next(l for l in base.links if primary in (l.a, l.b))
    pop = spur.b if spur.a == primary else spur.a
    backup = primary + backup_suffix
    backup_spur = LinkSpec(
        pop,
        backup,
        spur.bandwidth_bps,
        backup_spur_ms if backup_spur_ms is not None else spur.delay_ms,
        loss=spur.loss,
        queue_bytes=spur.queue_bytes,
    )
    scenario = base.with_(
        name=f"{base.name}-depot-failure",
        description=f"{base.description} + warm spare depot for failover",
        links=base.links + (backup_spur,),
        backup_depots=(backup,),
    )
    return scenario.with_(**overrides) if overrides else scenario


#: Registry used by the CLI and the benchmarks.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "case1": case1_uiuc_via_denver,
    "case2": case2_uf_via_houston,
    "case3": case3_wireless_utk,
    "case4": case4_osu_steady_state,
}
SCENARIOS["depot-failure"] = depot_failure_scenario
SCENARIOS.update(
    {
        f"depot-failure-{case}": (
            lambda case=case, **kw: depot_failure_scenario(case, **kw)
        )
        for case in ("case1", "case2", "case3", "case4")
    }
)
