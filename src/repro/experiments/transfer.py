"""Run one measured transfer, direct TCP or LSL-cascaded.

Matches the paper's measurement method: "we did not rely on TCP packet
trace timings, but rather we observed the host to host throughput
empirically so as to include all additional overheads associated with
traversing the relevant intermediate depot" — the clock starts when
the client initiates the connection and stops when the server has the
complete, verified payload.

The **direct** baseline is plain TCP (no LSL header, no session ACK,
no digest): exactly what the paper compares against. The **LSL**
transfer uses the full session machinery: synchronous establishment
through the cascade, MD5 trailer, depot store-and-forward.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.scenarios import (
    DEPOT_PORT,
    SERVER_PORT,
    Scenario,
    ScenarioEnv,
)
from repro.faults.plan import FaultPlan
from repro.lsl.client import FailoverTransfer, lsl_connect
from repro.lsl.server import LslServer
from repro.lsl.session import BackoffPolicy, new_session_id
from repro.tcp.trace import ConnectionTrace
from repro.telemetry import Telemetry
from repro.telemetry.protocol import protocol_observer

#: Direct (plain-TCP) transfers listen here, away from the LSL server.
DIRECT_PORT = 5001

#: Give up on a run after this much simulated time.
DEFAULT_DEADLINE_S = 3600.0


@dataclass
class TransferResult:
    """Outcome of one measured transfer."""

    mode: str  # "direct" | "lsl" | "lsl-failover"
    nbytes: int
    duration_s: float
    completed: bool
    digest_ok: Optional[bool] = None
    client_trace: Optional[ConnectionTrace] = None
    #: Depot-outbound sublink traces, route order (LSL only).
    sublink_traces: List[ConnectionTrace] = field(default_factory=list)
    error: Optional[str] = None
    #: Recovery accounting (lsl-failover mode only).
    attempts: int = 1
    failovers: int = 0
    #: Server-side contiguous byte count (lsl-failover mode only).
    bytes_delivered: Optional[int] = None
    #: The run's telemetry plane, when one was attached.
    telemetry: Optional[Telemetry] = None

    @property
    def throughput_mbps(self) -> float:
        if not self.completed or self.duration_s <= 0:
            return 0.0
        return self.nbytes * 8.0 / self.duration_s / 1e6

    @property
    def throughput_bps(self) -> float:
        return self.throughput_mbps * 1e6

    @property
    def retransmits(self) -> int:
        total = 0
        if self.client_trace is not None:
            total += self.client_trace.retransmit_count()
        for t in self.sublink_traces:
            total += t.retransmit_count()
        return total


#: Distinguishes artifact files when one process runs many transfers.
_artifact_seq = itertools.count()


def _telemetry_begin(env, telemetry, sample_while):
    """Resolve the run's telemetry plane.

    An explicit ``telemetry=`` argument wins; otherwise the
    ``REPRO_TELEMETRY_OUT`` environment variable (set by the
    ``repro-lsl --telemetry-out`` flag) turns capture on and names the
    artifact directory. Returns ``(telemetry_or_none, outdir_or_none)``.
    """
    outdir = os.environ.get("REPRO_TELEMETRY_OUT")
    if telemetry is None:
        if not outdir:
            return None, None
        telemetry = Telemetry()
    if telemetry.enabled and telemetry.net is None:
        telemetry.attach(env.net, sample_while=sample_while)
        for depot in env.depots:
            telemetry.sampler.add_depot(depot)
            telemetry.register_exporter(
                f"depot.{depot.host_name}", lambda d=depot: vars(d.stats)
            )
    return telemetry, outdir


def _telemetry_finish(telemetry, outdir, result, seed) -> None:
    """Stop sampling, dump the recorder on failure, write artifacts."""
    if telemetry is None:
        return
    result.telemetry = telemetry
    if telemetry.enabled:
        if not result.completed:
            telemetry.flight_dump(
                "transfer-abort",
                detail={"mode": result.mode, "error": result.error},
            )
        if telemetry.sampler is not None:
            telemetry.sampler.stop()
    if outdir:
        name = (
            f"{result.mode}-{result.nbytes}B-seed{seed}-"
            f"{next(_artifact_seq)}"
        )
        telemetry.write(outdir, name)
        if telemetry.enabled:
            # per-transfer FlowReport rides along with the raw streams
            from repro.telemetry.diagnose import diagnose_telemetry

            report = diagnose_telemetry(
                telemetry,
                mode=result.mode,
                nbytes=result.nbytes,
                duration_s=result.duration_s,
                source=name,
                seed=seed,
            )
            flow_path = os.path.join(outdir, f"{name}.flow.json")
            with open(flow_path, "w") as fp:
                json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
                fp.write("\n")


#: Repeating block for materialized (``payload="real"``) transfers:
#: deterministic, cheap to slice, and every byte value occurs.
_PATTERN = bytes(range(256)) * 256  # 64 KiB


def _real_payload_pump(send, nbytes: int, on_drained) -> object:
    """Pump that pushes ``nbytes`` of actual pattern bytes via ``send``
    (which returns the accepted count) and calls ``on_drained`` once."""
    pending = [nbytes]
    block = _PATTERN
    blen = len(block)

    def pump() -> None:
        while pending[0] > 0:
            off = (nbytes - pending[0]) % blen
            take = blen - off
            if take > pending[0]:
                take = pending[0]
            accepted = send(block[off : off + take])
            if accepted == 0:
                return
            pending[0] -= accepted
        if pending[0] == 0:
            pending[0] = -1  # fire completion exactly once
            on_drained()

    return pump


def _drive_client_payload(conn, nbytes: int, payload: str = "virtual") -> None:
    """Wire a pump that pushes ``nbytes`` of payload through an LSL
    client connection and finishes with the digest trailer.

    ``payload="virtual"`` (the default) moves lengths + running
    checksums only — no payload bytes exist, so memory stays
    proportional to the TCP windows and throughput-shape experiments
    scale to arbitrary sizes. ``payload="real"`` materializes a
    deterministic byte pattern end to end (MD5 over actual content);
    both modes produce the identical simulated timeline.
    """
    if payload == "virtual":
        pending = [nbytes]

        def pump() -> None:
            if pending[0] > 0:
                pending[0] -= conn.send_virtual(pending[0])
                if pending[0] == 0:
                    conn.finish()
            elif pending[0] == 0:
                conn.finish()

    elif payload == "real":
        pump = _real_payload_pump(conn.send, nbytes, conn.finish)
    else:
        raise ValueError(f"unknown payload mode {payload!r}")

    conn.on_writable = pump
    conn._user_on_connected = pump
    if conn.established:  # already up (e.g. rebind completed instantly)
        pump()


def run_lsl_transfer(
    scenario: Scenario,
    nbytes: int,
    seed: int = 0,
    deadline_s: float = DEFAULT_DEADLINE_S,
    env: Optional[ScenarioEnv] = None,
    telemetry: Optional[Telemetry] = None,
    payload: str = "virtual",
) -> TransferResult:
    """One LSL transfer along the scenario's depot route."""
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    if env is None:
        env = scenario.build(seed)
    net = env.net

    # trace every depot's outbound sublink, in route order
    sublink_traces: List[ConnectionTrace] = []
    for depot in env.depots:
        def factory(header, d=depot):
            t = ConnectionTrace(label=f"sublink-from-{d.host_name}")
            sublink_traces.append(t)
            return t

        depot.trace_factory = factory

    done: Dict[str, object] = {}

    def on_session(conn) -> None:
        conn.on_readable = lambda: conn.recv()

        def complete(c) -> None:
            done["t"] = net.sim.now
            done["digest_ok"] = c.digest_ok

        conn.on_complete = complete
        conn.on_error = lambda e: done.setdefault("error", str(e))

    server = LslServer(env.server_stack, SERVER_PORT, on_session)

    tel, tel_outdir = _telemetry_begin(
        env, telemetry, lambda: "t" not in done and "error" not in done
    )
    session_id = new_session_id(net.rng.stream("lsl-session-ids"))
    root_span = None
    if tel is not None and tel.enabled:
        sid = session_id.hex()[:8]
        root_span = tel.spans.begin(
            f"session:{sid}", cat="lsl", group=sid,
            args={"nbytes": nbytes, "mode": "lsl"},
        )

    client_trace = ConnectionTrace(label="sublink-1")
    conn = lsl_connect(
        env.client_stack,
        scenario.lsl_route,
        payload_length=nbytes,
        trace=client_trace,
        session_id=session_id,
        parent_span=root_span,
    )
    conn.on_close = lambda err: done.setdefault(
        "error", str(err)
    ) if err is not None else None
    _drive_client_payload(conn, nbytes, payload)
    if tel is not None and tel.enabled and conn.sock.conn is not None:
        tel.sampler.add_tcp_connection(conn.sock.conn, "client")

    net.sim.run(until=deadline_s)

    if "t" in done:
        result = TransferResult(
            mode="lsl",
            nbytes=nbytes,
            duration_s=float(done["t"]),  # type: ignore[arg-type]
            completed=True,
            digest_ok=bool(done.get("digest_ok")),
            client_trace=client_trace,
            sublink_traces=sublink_traces,
        )
    else:
        result = TransferResult(
            mode="lsl",
            nbytes=nbytes,
            duration_s=deadline_s,
            completed=False,
            client_trace=client_trace,
            sublink_traces=sublink_traces,
            error=str(done.get("error", "deadline exceeded")),
        )
    if root_span is not None:
        tel.spans.end(
            root_span,
            args={"completed": result.completed,
                  "duration_s": result.duration_s},
        )
    _telemetry_finish(tel, tel_outdir, result, seed)
    return result


def run_failover_transfer(
    scenario: Scenario,
    nbytes: int,
    fault_plan: Optional[FaultPlan] = None,
    seed: int = 0,
    deadline_s: float = DEFAULT_DEADLINE_S,
    env: Optional[ScenarioEnv] = None,
    backoff: Optional[BackoffPolicy] = None,
    max_attempts: int = 10,
    telemetry: Optional[Telemetry] = None,
) -> TransferResult:
    """One fault-tolerant LSL transfer under an (optional) fault plan.

    The client climbs the scenario's ``candidate_routes`` ladder on
    failures, resuming from the server's authoritative offset; the
    clock keeps running through outages, so the result's throughput is
    *goodput* — delivered payload over wall-clock time including every
    retry and backoff wait.
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    if env is None:
        env = scenario.build(seed)
    net = env.net
    if fault_plan is not None:
        fault_plan.arm(net, env.depots)

    done: Dict[str, object] = {}

    def on_session(conn) -> None:
        conn.on_readable = lambda: conn.recv()

        def complete(c) -> None:
            done["t"] = net.sim.now
            done["digest_ok"] = c.digest_ok
            done["payload_received"] = c.payload_received
            xfer.mark_complete()

        conn.on_complete = complete
        conn.on_error = lambda e: done.setdefault("server_error", str(e))

    LslServer(env.server_stack, SERVER_PORT, on_session)

    tel, tel_outdir = _telemetry_begin(
        env,
        telemetry,
        lambda: "t" not in done and "client_error" not in done,
    )

    xfer = FailoverTransfer(
        env.client_stack,
        scenario.candidate_routes,
        nbytes,
        backoff=backoff if backoff is not None else BackoffPolicy(),
        max_attempts=max_attempts,
        on_done=lambda err: done.setdefault(
            "client_error", str(err)
        ) if err is not None else None,
    )

    net.sim.run(until=deadline_s)

    if "t" in done:
        result = TransferResult(
            mode="lsl-failover",
            nbytes=nbytes,
            duration_s=float(done["t"]),  # type: ignore[arg-type]
            completed=True,
            digest_ok=bool(done.get("digest_ok")),
            attempts=xfer.attempts,
            failovers=xfer.failovers,
            bytes_delivered=int(done["payload_received"]),  # type: ignore[arg-type]
        )
    else:
        result = TransferResult(
            mode="lsl-failover",
            nbytes=nbytes,
            duration_s=deadline_s,
            completed=False,
            attempts=xfer.attempts,
            failovers=xfer.failovers,
            error=str(
                done.get("client_error")
                or done.get("server_error")
                or "deadline exceeded"
            ),
        )
    _telemetry_finish(tel, tel_outdir, result, seed)
    return result


def run_direct_transfer(
    scenario: Scenario,
    nbytes: int,
    seed: int = 0,
    deadline_s: float = DEFAULT_DEADLINE_S,
    env: Optional[ScenarioEnv] = None,
    telemetry: Optional[Telemetry] = None,
    payload: str = "virtual",
) -> TransferResult:
    """One plain-TCP transfer over the default path (the baseline)."""
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    if env is None:
        env = scenario.build(seed)
    net = env.net

    done: Dict[str, object] = {}
    received = [0]

    def on_accept(sock) -> None:
        def drain() -> None:
            for chunk in sock.recv():
                received[0] += chunk.length
            if received[0] >= nbytes and "t" not in done:
                done["t"] = net.sim.now

        sock.on_readable = drain

        def peer_fin() -> None:
            drain()
            sock.close()

        sock.on_peer_fin = peer_fin

    listener = env.server_stack.socket()
    listener.listen(DIRECT_PORT, on_accept)

    tel, tel_outdir = _telemetry_begin(
        env, telemetry, lambda: "t" not in done and "error" not in done
    )
    root_span = None
    if tel is not None and tel.enabled:
        root_span = tel.spans.begin(
            "direct-transfer", cat="tcp", args={"nbytes": nbytes}
        )

    client_trace = ConnectionTrace(label="direct")
    csock = env.client_stack.socket()
    if payload == "virtual":
        pending = [nbytes]

        def pump() -> None:
            if pending[0] > 0:
                pending[0] -= csock.send_virtual(pending[0])
                if pending[0] == 0:
                    csock.close()

    elif payload == "real":
        pump = _real_payload_pump(csock.send, nbytes, csock.close)
    else:
        raise ValueError(f"unknown payload mode {payload!r}")

    csock.on_writable = pump
    csock.connect(
        (scenario.server, DIRECT_PORT), on_connected=pump, trace=client_trace
    )
    csock.on_close = lambda err: done.setdefault(
        "error", str(err)
    ) if err is not None else None
    if tel is not None and tel.enabled and csock.conn is not None:
        csock.conn.telemetry_span = root_span
        tel.sampler.add_tcp_connection(csock.conn, "client")
        cc_obs = protocol_observer(tel, "tcp-client", lambda: root_span)
        if cc_obs is not None:
            csock.conn.attach_cc_observer(cc_obs, "direct")

    net.sim.run(until=deadline_s)

    if "t" in done:
        result = TransferResult(
            mode="direct",
            nbytes=nbytes,
            duration_s=float(done["t"]),  # type: ignore[arg-type]
            completed=True,
            client_trace=client_trace,
        )
    else:
        result = TransferResult(
            mode="direct",
            nbytes=nbytes,
            duration_s=deadline_s,
            completed=False,
            client_trace=client_trace,
            error=str(done.get("error", "deadline exceeded")),
        )
    if root_span is not None:
        tel.spans.end(
            root_span,
            args={"completed": result.completed,
                  "duration_s": result.duration_s},
        )
    _telemetry_finish(tel, tel_outdir, result, seed)
    return result
