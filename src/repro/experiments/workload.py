"""Session workload generation and fairness accounting.

Section VII-A leaves "multiple-connection contention" and "carrying
capacity" unmeasured; this module supplies the machinery to measure
them in the reproduction:

- :class:`PoissonWorkload` — sessions arriving as a Poisson process
  with log-normally distributed sizes (the classic heavy-tailed
  transfer mix);
- :func:`run_workload` — drive a workload through a scenario, every
  session over the same depot route, and collect per-session metrics;
- :func:`jain_fairness` — Jain's fairness index over per-session
  throughputs (1.0 = perfectly fair).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.experiments.scenarios import SERVER_PORT, Scenario
from repro.lsl.client import lsl_connect
from repro.lsl.server import LslServer


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1]."""
    if not values:
        raise ValueError("empty values")
    if any(v < 0 for v in values):
        raise ValueError("negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class SessionSpec:
    """One planned session: when it starts and how much it moves."""

    start_s: float
    nbytes: int


@dataclass
class SessionOutcome:
    """What happened to one session."""

    spec: SessionSpec
    completed: bool
    finish_s: Optional[float] = None
    digest_ok: Optional[bool] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.spec.start_s

    @property
    def throughput_mbps(self) -> float:
        d = self.duration_s
        if not self.completed or not d:
            return 0.0
        return self.spec.nbytes * 8 / d / 1e6


class PoissonWorkload:
    """Sessions arriving at ``rate_per_s`` with log-normal sizes."""

    def __init__(
        self,
        rate_per_s: float,
        mean_bytes: float = 1 << 20,
        sigma: float = 1.0,
        min_bytes: int = 16 << 10,
        max_bytes: int = 64 << 20,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if mean_bytes <= 0:
            raise ValueError("mean size must be positive")
        self.rate = rate_per_s
        self.mean_bytes = mean_bytes
        self.sigma = sigma
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes

    def generate(self, n: int, rng) -> List[SessionSpec]:
        """``n`` sessions; ``rng`` is a ``random.Random``."""
        mu = math.log(self.mean_bytes) - self.sigma**2 / 2.0
        t = 0.0
        specs = []
        for _ in range(n):
            t += rng.expovariate(self.rate)
            size = int(rng.lognormvariate(mu, self.sigma))
            size = max(self.min_bytes, min(size, self.max_bytes))
            specs.append(SessionSpec(start_s=t, nbytes=size))
        return specs


def run_workload(
    scenario: Scenario,
    specs: Sequence[SessionSpec],
    seed: int = 0,
    use_depot: bool = True,
    deadline_s: float = 3600.0,
) -> List[SessionOutcome]:
    """Run every session of ``specs`` in one shared simulation.

    All sessions share the path (and the depot when ``use_depot``), so
    they contend exactly as Section VII-A worries about.
    """
    env = scenario.build(seed)
    net = env.net
    outcomes = [SessionOutcome(spec=s, completed=False) for s in specs]

    def on_session(conn) -> None:
        conn.on_readable = lambda: conn.recv()

        def complete(c, conn=conn):
            idx = session_index.get(c.session_id)
            if idx is not None:
                outcomes[idx].completed = True
                outcomes[idx].finish_s = net.sim.now
                outcomes[idx].digest_ok = c.digest_ok

        conn.on_complete = complete

    LslServer(env.server_stack, SERVER_PORT, on_session)
    session_index = {}

    route = scenario.lsl_route if use_depot else [(scenario.server, SERVER_PORT)]

    def launch(idx: int) -> None:
        spec = specs[idx]
        conn = lsl_connect(
            env.client_stack, route, payload_length=spec.nbytes
        )
        session_index[conn.session_id] = idx
        pending = [spec.nbytes]

        def pump(conn=conn, pending=pending):
            if pending[0] > 0:
                pending[0] -= conn.send_virtual(pending[0])
                if pending[0] == 0:
                    conn.finish()

        conn.on_writable = pump
        conn._user_on_connected = pump

    for i, spec in enumerate(specs):
        net.sim.schedule_at(spec.start_s, launch, i)
    net.sim.run(until=deadline_s)
    return outcomes


def summarize_workload(outcomes: Sequence[SessionOutcome]) -> dict:
    """Aggregate view: completion rate, mean rate, fairness."""
    done = [o for o in outcomes if o.completed]
    rates = [o.throughput_mbps for o in done]
    return {
        "sessions": len(outcomes),
        "completed": len(done),
        "completion_rate": len(done) / len(outcomes) if outcomes else 0.0,
        "mean_mbps": sum(rates) / len(rates) if rates else 0.0,
        "fairness": jain_fairness(rates) if rates else 0.0,
        "all_digests_ok": all(o.digest_ok for o in done) if done else False,
    }
