"""The paper's experimental campaign.

- :mod:`repro.experiments.scenarios` — the four testbed configurations
  (Case 1: UCSB→UIUC via Denver; Case 2: UCSB→UF via Houston; Case 3:
  UTK→wireless UCSB; Case 4: UCSB→OSU steady state), with topologies
  calibrated to the RTTs the paper reports in Figs 3, 4 and 9.
- :mod:`repro.experiments.transfer` — run one transfer, direct TCP or
  LSL-cascaded, and collect wall-clock + sender-side traces.
- :mod:`repro.experiments.striped` — striped (multipath) transfers
  with redundancy, seeded faults, and the online re-planner.
- :mod:`repro.experiments.figures` — one entry point per data figure
  (fig03 ... fig29) returning printable series.
- :mod:`repro.experiments.report` — ASCII rendering of those series.
- :mod:`repro.experiments.runner` — ``repro-lsl`` CLI.

Scaling knobs (environment variables, all optional):

- ``REPRO_ITERATIONS`` — iterations per data point (default 3; the
  paper uses 10, Case 4 uses 120).
- ``REPRO_MAX_SIZE`` — cap on transfer sizes, e.g. ``"16M"`` (default
  64M). Paper sizes above the cap are dropped from sweeps.
- ``REPRO_SEED`` — base RNG seed (default 2002).
"""

from repro.experiments import scenarios, transfer
from repro.experiments.scenarios import Scenario
from repro.experiments.striped import StripedTransferResult, run_striped_transfer
from repro.experiments.transfer import (
    TransferResult,
    run_direct_transfer,
    run_failover_transfer,
    run_lsl_transfer,
)

__all__ = [
    "scenarios",
    "transfer",
    "Scenario",
    "StripedTransferResult",
    "TransferResult",
    "run_direct_transfer",
    "run_failover_transfer",
    "run_lsl_transfer",
    "run_striped_transfer",
]
