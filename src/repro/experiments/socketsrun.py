"""Measured transfers over the *real-socket* stacks (both drivers).

The simulator carries the paper's throughput claims; these runners
exercise the actual artifact shape — a client, N ``lsd`` depots, and a
server on loopback sockets — under a selectable driver (``threads`` =
:mod:`repro.sockets`, ``asyncio`` = :mod:`repro.asockets`). They back
the ``--transport sockets`` paths of ``repro-lsl transfer`` and
``repro-lsl failover`` and the differential/c10k test families.

:func:`run_socket_transfer` moves one digested payload through a depot
cascade and reports wall-clock goodput plus per-depot counters.
:func:`run_socket_failover` additionally crashes the primary depot
mid-transfer (socket-level resets on live relays) and drives the
client-side failover loop: back off, rebind over the backup route with
a negotiated resume query, and continue from the granted offset — the
same recovery sequence the simulator's ``FailoverTransfer`` runs.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lsl.core import BackoffPolicy, real_digest_factory
from repro.lsl.errors import FailoverExhausted, LslError

DRIVERS = ("threads", "asyncio")

#: Payload pattern block (repeated): cheap to generate at any size,
#: incompressible enough to be honest about copy costs.
_PATTERN = random.Random(20010825).randbytes(1 << 16)


def pattern_payload(nbytes: int) -> bytes:
    """Deterministic pattern bytes of exactly ``nbytes``."""
    reps = nbytes // len(_PATTERN) + 1
    return (_PATTERN * reps)[:nbytes]


@dataclass
class SocketTransferResult:
    """Outcome of one real-socket transfer."""

    driver: str
    nbytes: int
    duration_s: float
    completed: bool
    digest_ok: Optional[bool]
    attempts: int = 1
    failovers: int = 0
    error: Optional[str] = None
    depot_counters: List[Dict[str, int]] = field(default_factory=list)

    @property
    def throughput_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.nbytes * 8 / self.duration_s / 1e6


def _make_stack(driver: str, observer=None):
    """(ServerCls, DepotCls, send_fn) for the chosen driver.

    ``send_fn(route, payload, session_id)`` performs one complete
    client transfer (connect, payload, trailer, close) and blocks until
    sent. For the asyncio driver the *client* also runs on asyncio (in
    ``asyncio.run``), so the whole path is loop-driven end to end.
    """
    if driver == "threads":
        from repro.sockets import LslSocketClient, ThreadedDepot, ThreadedLslServer

        def send(route, payload, session_id=None):
            with LslSocketClient(
                route, payload_length=len(payload), session_id=session_id
            ) as client:
                client.sendall(payload)
                client.finish()

        return ThreadedLslServer, ThreadedDepot, send
    if driver == "asyncio":
        import asyncio

        from repro.asockets import AsyncDepot, AsyncLslClient, AsyncLslServer

        def send(route, payload, session_id=None):
            async def _run():
                async with AsyncLslClient(
                    route, payload_length=len(payload), session_id=session_id
                ) as client:
                    await client.sendall(payload)
                    await client.finish()

            asyncio.run(_run())

        return AsyncLslServer, AsyncDepot, send
    raise LslError(f"unknown driver {driver!r} (want one of {DRIVERS})")


def run_socket_transfer(
    nbytes: int,
    *,
    driver: str = "threads",
    depots: int = 1,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
) -> SocketTransferResult:
    """One digested transfer through ``depots`` cascaded real depots."""
    server_cls, depot_cls, send = _make_stack(driver)
    payload = pattern_payload(nbytes)
    with server_cls(host) as server:
        chain = [depot_cls(host) for _ in range(depots)]
        try:
            route = [d.address for d in chain] + [server.address]
            t0 = time.perf_counter()
            error: Optional[str] = None
            try:
                send(route, payload)
                completed = server.wait_for_sessions(1, timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - reported in result
                completed, error = False, f"{type(exc).__name__}: {exc}"
            duration = time.perf_counter() - t0
            digest_ok = None
            if server.results:
                digest_ok = server.results[0].digest_ok
                completed = completed and server.results[0].payload == payload
            elif server.errors and error is None:
                exc = server.errors[0]
                completed, error = False, f"{type(exc).__name__}: {exc}"
            for d in chain:  # let in-flight relays drain before snapshot
                _await_idle(d)
            return SocketTransferResult(
                driver=driver,
                nbytes=nbytes,
                duration_s=duration,
                completed=completed,
                digest_ok=digest_ok,
                error=error,
                depot_counters=[d.counters.snapshot() for d in chain],
            )
        finally:
            for d in chain:
                d.shutdown()


@dataclass
class SocketStripedResult(SocketTransferResult):
    """Outcome of one real-socket *striped* (multipath) transfer."""

    per_sublink_bytes: List[int] = field(default_factory=list)
    redundant_stripes: int = 0
    redeals: int = 0
    sublink_errors: int = 0


def run_socket_striped(
    nbytes: int,
    *,
    driver: str = "threads",
    routes: int = 2,
    depots: int = 0,
    redundancy: str = "none",
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    sndbuf: Optional[int] = 64 * 1024,
) -> SocketStripedResult:
    """One striped transfer over ``routes`` real sublinks.

    The first ``depots`` routes each run through their own ``lsd``
    depot (multipath); the rest go direct (parallel-TCP style). The
    small default ``sndbuf`` keeps loopback demand-paced so every
    sublink actually carries stripes instead of the first one
    swallowing the whole payload into kernel buffers.
    """
    if routes <= 0:
        raise LslError("need at least one route")
    if not 0 <= depots <= routes:
        raise LslError("depots must be between 0 and routes")
    if driver == "threads":
        from repro.sockets.striped import StripedThreadedServer, send_striped

        def striped_send(route_list, payload):
            return send_striped(
                route_list, payload, redundancy=redundancy,
                timeout=timeout, sndbuf=sndbuf,
            )

        server_cls = StripedThreadedServer
        _, depot_cls, _ = _make_stack("threads")
    elif driver == "asyncio":
        import asyncio

        from repro.asockets.striped import AsyncStripedServer
        from repro.asockets.striped import send_striped as async_send

        def striped_send(route_list, payload):
            async def _run():
                return await async_send(
                    route_list, payload, redundancy=redundancy,
                    timeout=timeout, sndbuf=sndbuf,
                )

            return asyncio.run(_run())

        server_cls = AsyncStripedServer
        _, depot_cls, _ = _make_stack("asyncio")
    else:
        raise LslError(f"unknown driver {driver!r} (want one of {DRIVERS})")

    payload = pattern_payload(nbytes)
    with server_cls(host) as server:
        chain = [depot_cls(host) for _ in range(depots)]
        try:
            route_list = [
                [chain[i].address, server.address]
                if i < depots
                else [server.address]
                for i in range(routes)
            ]
            t0 = time.perf_counter()
            error: Optional[str] = None
            report = None
            try:
                report = striped_send(route_list, payload)
                completed = server.wait_for_sessions(1, timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - reported in result
                completed, error = False, f"{type(exc).__name__}: {exc}"
            duration = time.perf_counter() - t0
            digest_ok = None
            if server.results:
                digest_ok = server.results[0].digest_ok
                completed = completed and server.results[0].payload == payload
            elif server.errors and error is None:
                exc = server.errors[0]
                completed, error = False, f"{type(exc).__name__}: {exc}"
            for d in chain:
                _await_idle(d)
            return SocketStripedResult(
                driver=driver,
                nbytes=nbytes,
                duration_s=duration,
                completed=completed,
                digest_ok=digest_ok,
                error=error,
                depot_counters=[d.counters.snapshot() for d in chain],
                per_sublink_bytes=(
                    list(report.per_sublink_bytes) if report else []
                ),
                redundant_stripes=report.redundant_stripes if report else 0,
                redeals=report.redeals if report else 0,
                sublink_errors=len(report.sublink_errors) if report else 0,
            )
        finally:
            for d in chain:
                d.shutdown()


def _await_idle(depot, timeout: float = 5.0) -> None:
    """Wait for a depot's active-session gauge to reach zero."""
    deadline = time.monotonic() + timeout
    while depot.counters.active_sessions > 0 and time.monotonic() < deadline:
        time.sleep(0.005)


def _crash_when_received(
    server, session_id: bytes, threshold: int,
    depot, crashed: threading.Event,
) -> None:
    """Crash ``depot`` once the server has ``threshold`` payload bytes.

    Watches the live receiver through the session registry (the relay's
    own ``bytes_relayed`` counter is batched per pump run, so it shows
    nothing until the relay *ends* — useless as a mid-stream trigger).
    """
    while not crashed.is_set():
        record = server.registry.get(session_id)
        live = getattr(record, "attachment", None) if record else None
        if live is not None and live.receiver.payload_received >= threshold:
            if hasattr(depot, "_session_socks"):  # ThreadedDepot
                depot.shutdown(abort_sessions=True)
            else:  # AsyncDepot: non-draining shutdown == crash
                depot.shutdown(drain=False)
            crashed.set()
            return
        time.sleep(0.002)


def run_socket_failover(
    nbytes: int,
    *,
    driver: str = "threads",
    crash_after_fraction: float = 0.25,
    max_attempts: int = 4,
    backoff: Optional[BackoffPolicy] = None,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    rng: Optional[random.Random] = None,
    pace_s: float = 0.0005,
) -> SocketTransferResult:
    """Transfer through a primary depot that crashes mid-stream.

    Route 1 is ``client -> depot A -> server``; once depot A has
    relayed ``crash_after_fraction`` of the payload it is killed with
    its live sessions aborted. The client then fails over: exponential
    backoff, rebind through the backup depot B with ``resume_query``,
    resume from the server's granted offset, finish, verify the MD5.

    ``pace_s`` sleeps between 32 KiB client sends; loopback is fast
    enough that an unpaced transfer outruns the crash watcher and the
    failover path never fires.
    """
    if not (0.0 < crash_after_fraction < 1.0):
        raise LslError("crash_after_fraction must be in (0, 1)")
    server_cls, depot_cls, _send = _make_stack(driver)
    payload = pattern_payload(nbytes)
    session_id = (rng or random.Random()).getrandbits(128).to_bytes(16, "big")
    policy = backoff or BackoffPolicy(base_s=0.05, max_s=1.0)
    rng = rng or random.Random(0)
    crashed = threading.Event()
    with server_cls(host) as server:
        primary = depot_cls(host)
        backup = depot_cls(host)
        watcher = threading.Thread(
            target=_crash_when_received,
            args=(
                server,
                session_id,
                int(nbytes * crash_after_fraction),
                primary,
                crashed,
            ),
            daemon=True,
        )
        watcher.start()
        t0 = time.perf_counter()
        attempts = 0
        failovers = 0
        error: Optional[str] = None
        try:
            sent = _failover_send(
                driver,
                [primary.address, server.address],
                [backup.address, server.address],
                payload,
                session_id,
                policy,
                rng,
                max_attempts,
                pace_s=pace_s,
                # an attempt only counts once the *server* completed the
                # session: a send can return locally (bytes parked in
                # kernel buffers) while the relay already died
                confirm=lambda: server.wait_for_sessions(
                    1, timeout=min(5.0, timeout)
                ),
            )
            attempts, failovers = sent
            completed = server.wait_for_sessions(1, timeout=timeout)
        except Exception as exc:  # noqa: BLE001 - reported in result
            completed, error = False, f"{type(exc).__name__}: {exc}"
        finally:
            crashed.set()
            primary.shutdown()
            backup.shutdown()
        duration = time.perf_counter() - t0
        digest_ok = None
        if server.results:
            digest_ok = server.results[0].digest_ok
            completed = completed and server.results[0].payload == payload
        return SocketTransferResult(
            driver=driver,
            nbytes=nbytes,
            duration_s=duration,
            completed=completed,
            digest_ok=digest_ok,
            attempts=max(attempts, 1),
            failovers=failovers,
            error=error,
            depot_counters=[
                primary.counters.snapshot(), backup.counters.snapshot()
            ],
        )


def _failover_send(
    driver: str,
    primary_route: Sequence[Tuple[str, int]],
    backup_route: Sequence[Tuple[str, int]],
    payload: bytes,
    session_id: bytes,
    policy: BackoffPolicy,
    rng: random.Random,
    max_attempts: int,
    pace_s: float = 0.0,
    confirm=None,
) -> Tuple[int, int]:
    """Send with failover; returns ``(attempts, failovers)``.

    First attempt opens a fresh session on the primary route; every
    retry rebinds on the backup route with a resume query, restarting
    the trailer digest from the granted offset via the shared
    ``real_digest_factory``. An attempt succeeds only when ``confirm()``
    (server-side completion) agrees. Raises :class:`FailoverExhausted`
    when the attempt budget runs out.
    """
    attempts = 0
    failovers = 0
    last_error: Optional[Exception] = None
    while attempts < max_attempts:
        route = primary_route if attempts == 0 else backup_route
        rebind = attempts > 0
        attempts += 1
        try:
            _one_attempt(driver, route, payload, session_id, rebind, pace_s)
            if confirm is not None and not confirm():
                raise LslError("relay lost the stream after a local send")
            return attempts, failovers
        except (OSError, LslError) as exc:
            last_error = exc
            failovers += 1
            time.sleep(policy.delay(failovers - 1, rng))
    raise FailoverExhausted(
        f"gave up after {attempts} attempts: {last_error}"
    ) from last_error


_PACE_CHUNK = 32 * 1024


def _one_attempt(
    driver: str,
    route: Sequence[Tuple[str, int]],
    payload: bytes,
    session_id: bytes,
    rebind: bool,
    pace_s: float = 0.0,
) -> None:
    kwargs = dict(payload_length=len(payload), session_id=session_id)
    if rebind:
        kwargs.update(
            rebind=True,
            resume_query=True,
            digest_factory=real_digest_factory(payload),
        )
    if driver == "threads":
        from repro.sockets import LslSocketClient

        client = LslSocketClient(list(route), **kwargs)
        try:
            offset = client.granted_offset or 0
            for pos in range(offset, len(payload), _PACE_CHUNK):
                client.sendall(payload[pos : pos + _PACE_CHUNK])
                if pace_s:
                    time.sleep(pace_s)
            client.finish()
        finally:
            client.close()
        return
    import asyncio

    from repro.asockets import AsyncLslClient

    async def _run():
        client = await AsyncLslClient.open(list(route), **kwargs)
        try:
            offset = client.granted_offset or 0
            for pos in range(offset, len(payload), _PACE_CHUNK):
                await client.sendall(payload[pos : pos + _PACE_CHUNK])
                if pace_s:
                    await asyncio.sleep(pace_s)
            await client.finish()
        finally:
            client.close()

    asyncio.run(_run())
