"""Run one measured *striped* (multipath) transfer in the simulator.

The striped transfer deals stripes across several routes at once
(:mod:`repro.lsl.striped`); this runner adds the operational loop
around it:

- an optional :class:`~repro.faults.plan.FaultPlan` kills depots or
  flaps links mid-transfer — under ``duplicate-k`` redundancy the
  session completes with **zero resume round-trips** because the
  survivors already carry coverage;
- ``replan=True`` wires the online re-planner
  (:mod:`repro.logistics.replan`): a periodic prober feeds empirical
  loss into the monitor, a route watch re-ranks on every sample, and
  sublinks whose route falls out of the top-N migrate mid-transfer;
- every protocol event is counted (and bridged to the telemetry plane
  when one is attached), so results report redundant stripes,
  re-deals, migrations, discarded duplicates, and — crucially for the
  comparison against :func:`~repro.experiments.transfer.run_failover_transfer`
  — how many ``resume-granted`` round-trips the run needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.scenarios import (
    DEPOT_PORT,
    SERVER_PORT,
    Scenario,
    ScenarioEnv,
)
from repro.experiments.transfer import (
    DEFAULT_DEADLINE_S,
    _telemetry_begin,
    _telemetry_finish,
)
from repro.faults.plan import FaultPlan
from repro.logistics.monitor import NetworkMonitor
from repro.logistics.planner import DepotPlanner
from repro.logistics.replan import PathProber, StripedReplanner
from repro.lsl.core.events import ProtocolEvent
from repro.lsl.core.striping import DEFAULT_STRIPE
from repro.lsl.session import new_session_id
from repro.lsl.striped import StripedClient, StripedLslServer
from repro.telemetry import Telemetry
from repro.telemetry.protocol import protocol_observer


@dataclass
class StripedTransferResult:
    """Outcome of one measured striped transfer."""

    nbytes: int
    duration_s: float
    completed: bool
    digest_ok: Optional[bool] = None
    error: Optional[str] = None
    #: Data payload carried per sublink, in sublink-creation order
    #: (migration replacements appended at the end).
    per_sublink_bytes: List[int] = field(default_factory=list)
    redundant_stripes: int = 0
    redeals: int = 0
    migrations: int = 0
    duplicate_bytes: int = 0
    reconstructed_blocks: int = 0
    #: Protocol events by kind, both ends combined.
    event_counts: Dict[str, int] = field(default_factory=dict)
    telemetry: Optional[Telemetry] = None
    mode: str = "lsl-striped"

    @property
    def resume_queries(self) -> int:
        """Negotiated-resume round-trips the run needed (the striped
        degrade path needs none; the failover baseline needs >= 1 per
        mid-transfer loss)."""
        return self.event_counts.get("resume-granted", 0)

    @property
    def throughput_mbps(self) -> float:
        if not self.completed or self.duration_s <= 0:
            return 0.0
        return self.nbytes * 8.0 / self.duration_s / 1e6


def run_striped_transfer(
    scenario: Scenario,
    nbytes: int,
    n_routes: int = 2,
    redundancy: str = "none",
    stripe_bytes: int = DEFAULT_STRIPE,
    fault_plan: Optional[FaultPlan] = None,
    replan: bool = False,
    probe_interval_s: float = 0.5,
    seed: int = 0,
    deadline_s: float = DEFAULT_DEADLINE_S,
    env: Optional[ScenarioEnv] = None,
    telemetry: Optional[Telemetry] = None,
) -> StripedTransferResult:
    """One striped transfer across the scenario's candidate routes.

    The first ``n_routes`` rungs of the scenario's failover ladder
    become sublinks (cycling when the ladder is shorter), so a
    depot-failure scenario stripes across primary depot, warm spare,
    and the direct path.
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    if n_routes <= 0:
        raise ValueError("need at least one route")
    if env is None:
        env = scenario.build(seed)
    net = env.net
    if fault_plan is not None:
        fault_plan.arm(net, env.depots)

    candidates = scenario.candidate_routes
    routes = [candidates[i % len(candidates)] for i in range(n_routes)]

    done: Dict[str, object] = {}
    counts: Dict[str, int] = {}

    tel, tel_outdir = _telemetry_begin(
        env, telemetry, lambda: "t" not in done and "error" not in done
    )
    tel_observer = protocol_observer(tel, "striped") if tel else None

    def observer(event: ProtocolEvent) -> None:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if tel_observer is not None:
            tel_observer(event)

    def on_session(sess) -> None:
        def complete(s) -> None:
            done["t"] = net.sim.now
            done["digest_ok"] = s.digest_ok
            done["duplicate_bytes"] = s.assembler.duplicate_bytes
            done["reconstructed"] = s.assembler.reconstructed_blocks

        sess.on_complete = complete
        sess.on_error = lambda e: done.setdefault("error", str(e))

    StripedLslServer(
        env.server_stack, SERVER_PORT, on_session, observer=observer
    )
    data: Optional[bytes] = None
    if redundancy == "parity":
        # parity XOR needs real payload bytes; materialize the same
        # deterministic pattern the real-payload transfers use
        from repro.experiments.transfer import _PATTERN

        reps = nbytes // len(_PATTERN) + 1
        data = (_PATTERN * reps)[:nbytes]
    client = StripedClient(
        env.client_stack,
        routes,
        payload_length=nbytes,
        data=data,
        stripe_bytes=stripe_bytes,
        redundancy=redundancy,
        session_id=new_session_id(net.rng.stream("lsl-session-ids")),
        on_error=lambda e: done.setdefault("error", str(e)),
        observer=observer,
    )

    replanner: Optional[StripedReplanner] = None
    prober: Optional[PathProber] = None
    if replan:
        monitor = NetworkMonitor(net)
        depot_hosts = [*scenario.depots, *scenario.backup_depots]
        planner = DepotPlanner(monitor, depot_hosts)
        replanner = StripedReplanner(
            client,
            planner,
            scenario.client,
            scenario.server,
            depot_port=DEPOT_PORT,
            server_port=SERVER_PORT,
            max_routes=n_routes,
        )
        prober = PathProber(
            monitor,
            PathProber.legs_for(
                scenario.client, scenario.server, depot_hosts
            ),
            interval_s=probe_interval_s,
        )

    net.sim.run(until=deadline_s)

    if replanner is not None:
        replanner.close()
    if prober is not None:
        prober.close()

    completed = "t" in done
    result = StripedTransferResult(
        nbytes=nbytes,
        duration_s=float(done["t"]) if completed else deadline_s,  # type: ignore[arg-type]
        completed=completed,
        digest_ok=bool(done["digest_ok"]) if completed else None,
        error=None if completed else str(
            done.get("error", "deadline exceeded")
        ),
        per_sublink_bytes=client.per_sublink_bytes(),
        redundant_stripes=client.scheduler.redundant_stripes,
        redeals=client.scheduler.redeals,
        migrations=client.scheduler.migrations,
        duplicate_bytes=int(done.get("duplicate_bytes", 0)),  # type: ignore[arg-type]
        reconstructed_blocks=int(done.get("reconstructed", 0)),  # type: ignore[arg-type]
        event_counts=counts,
    )
    _telemetry_finish(tel, tel_outdir, result, seed)
    return result
