"""ASCII rendering of experiment results.

The benchmarks print the same rows/series the paper plots; these
helpers keep the formatting consistent: fixed-width tables, simple
bar charts for the RTT figures, and two-column series for the
bandwidth figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.util.units import fmt_bytes


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal ASCII bars (used for the RTT figures 3/4/9)."""
    if len(labels) != len(values):
        raise ValueError("labels/values mismatch")
    peak = max(values) if values else 1.0
    if peak <= 0:
        peak = 1.0
    label_w = max(len(l) for l in labels) if labels else 0
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.rjust(label_w)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def render_bandwidth_series(
    sizes: Sequence[int],
    direct_mbps: Sequence[float],
    lsl_mbps: Sequence[float],
    title: str = "",
    lsl_label: str = "LSL",
) -> str:
    """The two-series layout of the bandwidth figures (5-8, 10, 28, 29)."""
    rows = []
    for size, d, l in zip(sizes, direct_mbps, lsl_mbps):
        gain = f"{100.0 * (l / d - 1.0):+.0f}%" if d > 0 else "n/a"
        rows.append((fmt_bytes(size), f"{d:.2f}", f"{l:.2f}", gain))
    return render_table(
        ["size", "direct Mbit/s", f"{lsl_label} Mbit/s", "gain"], rows, title
    )


def render_seq_growth(
    curves,  # Sequence[SeqCurve]
    npoints: int = 12,
    title: str = "",
) -> str:
    """Compact textual view of sequence-number-growth curves: the byte
    position of each curve at evenly spaced times (Figs 11-27)."""
    if not curves:
        return title
    horizon = max(c.duration for c in curves)
    times = [horizon * i / (npoints - 1) for i in range(npoints)] if npoints > 1 else [0.0]
    headers = ["t(s)"] + [c.label or f"curve{i}" for i, c in enumerate(curves)]
    rows = []
    for t in times:
        rows.append(
            [f"{t:.2f}"] + [fmt_bytes(int(c.value_at(t))) for c in curves]
        )
    return render_table(headers, rows, title)


def print_report(*blocks: Optional[str]) -> None:
    """Print non-empty blocks separated by blank lines."""
    out = [b for b in blocks if b]
    print("\n\n".join(out))
