"""One entry point per data figure of the paper (figs 3-29).

Each ``figNN()`` function runs the required simulations and returns a
:class:`FigureResult` whose ``text`` is the printable series — the
same rows/series the paper plots — and whose ``data`` holds the raw
numbers for programmatic checks (the benchmarks assert on these).

Scaling: iterations and the size cap come from ``REPRO_ITERATIONS`` /
``REPRO_MAX_SIZE`` / ``REPRO_SEED`` (see :mod:`repro.experiments`).
When the cap truncates a sweep, the result notes it — shapes are
preserved, absolute ceilings are not.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.losscases import select_loss_cases
from repro.analysis.rtt import rtt_summary
from repro.analysis.seqgrowth import (
    SeqCurve,
    average_curves,
    curve_from_trace,
    shift_curve,
)
from repro.analysis.stats import mean, summarize_transfers
from repro.experiments.report import (
    render_bandwidth_series,
    render_bar_chart,
    render_seq_growth,
    render_table,
)
from repro.experiments.scenarios import (
    Scenario,
    case1_uiuc_via_denver,
    case2_uf_via_houston,
    case3_wireless_utk,
    case4_osu_steady_state,
)
from repro.experiments.transfer import (
    TransferResult,
    run_direct_transfer,
    run_lsl_transfer,
)
from repro.util.units import fmt_bytes, parse_size

K = 1 << 10
M = 1 << 20


def iterations(default: int = 3) -> int:
    """Iterations per data point (paper: 10; Case 4: 120)."""
    return int(os.environ.get("REPRO_ITERATIONS", default))


def max_size(default: int = 32 * M) -> int:
    """Cap on transfer sizes for sweeps."""
    raw = os.environ.get("REPRO_MAX_SIZE")
    return parse_size(raw) if raw else default


def base_seed() -> int:
    return int(os.environ.get("REPRO_SEED", 2002))


@dataclass
class FigureResult:
    """Printable reproduction of one paper figure."""

    figure: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        parts = [f"=== {self.figure}: {self.title} ==="]
        parts.append(self.text)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# shared runners
# ---------------------------------------------------------------------------


def _cap_sizes(sizes: Sequence[int]) -> Tuple[List[int], Optional[str]]:
    cap = max_size()
    kept = [s for s in sizes if s <= cap]
    if len(kept) < len(sizes):
        note = (
            f"sizes above REPRO_MAX_SIZE={fmt_bytes(cap)} dropped "
            f"({len(sizes) - len(kept)} of {len(sizes)})"
        )
    else:
        note = None
    if not kept:
        kept = [min(sizes)]
    return kept, note


def bandwidth_sweep(
    scenario: Scenario, sizes: Sequence[int], iters: Optional[int] = None
) -> Dict[str, object]:
    """Direct-vs-LSL mean bandwidth for each size (the paper's
    wall-clock method, N iterations each)."""
    iters = iterations() if iters is None else iters
    seed0 = base_seed()
    direct_means, lsl_means = [], []
    direct_stats, lsl_stats = [], []
    for si, size in enumerate(sizes):
        d_runs, l_runs = [], []
        for it in range(iters):
            seed = seed0 + 1000 * si + it
            d_runs.append(run_direct_transfer(scenario, size, seed=seed))
            l_runs.append(run_lsl_transfer(scenario, size, seed=seed))
        d_tp = [r.throughput_mbps for r in d_runs if r.completed]
        l_tp = [r.throughput_mbps for r in l_runs if r.completed]
        if not d_tp or not l_tp:
            raise RuntimeError(
                f"{scenario.name} @ {fmt_bytes(size)}: transfers failed"
            )
        direct_means.append(mean(d_tp))
        lsl_means.append(mean(l_tp))
        direct_stats.append(
            summarize_transfers(size, d_tp, [r.duration_s for r in d_runs])
        )
        lsl_stats.append(
            summarize_transfers(size, l_tp, [r.duration_s for r in l_runs])
        )
    return {
        "sizes": list(sizes),
        "direct_mbps": direct_means,
        "lsl_mbps": lsl_means,
        "direct_stats": direct_stats,
        "lsl_stats": lsl_stats,
    }


def _bandwidth_figure(
    figure: str,
    title: str,
    scenario: Scenario,
    sizes: Sequence[int],
) -> FigureResult:
    kept, note = _cap_sizes(sizes)
    data = bandwidth_sweep(scenario, kept)
    text = render_bandwidth_series(
        data["sizes"], data["direct_mbps"], data["lsl_mbps"], title=""
    )
    result = FigureResult(figure=figure, title=title, text=text, data=data)
    if note:
        result.notes.append(note)
    return result


def collect_lsl_runs(
    scenario: Scenario, nbytes: int, iters: Optional[int] = None
) -> List[TransferResult]:
    iters = iterations() if iters is None else iters
    seed0 = base_seed()
    return [
        run_lsl_transfer(scenario, nbytes, seed=seed0 + i) for i in range(iters)
    ]


def collect_direct_runs(
    scenario: Scenario, nbytes: int, iters: Optional[int] = None
) -> List[TransferResult]:
    iters = iterations() if iters is None else iters
    seed0 = base_seed()
    return [
        run_direct_transfer(scenario, nbytes, seed=seed0 + i)
        for i in range(iters)
    ]


def rtt_comparison_figure(
    figure: str, title: str, scenario: Scenario, nbytes: int = 4 * M
) -> FigureResult:
    """Figs 3/4/9: average observed TCP RTT of sublink 1, sublink 2,
    the end-to-end connection, and the sum of the sublinks."""
    nbytes = min(nbytes, max_size())
    lsl_runs = collect_lsl_runs(scenario, nbytes)
    direct_runs = collect_direct_runs(scenario, nbytes)
    sub1 = rtt_summary([r.client_trace for r in lsl_runs if r.client_trace])
    sub2 = rtt_summary(
        [t for r in lsl_runs for t in r.sublink_traces]
    )
    e2e = rtt_summary([r.client_trace for r in direct_runs if r.client_trace])
    labels = ["sublink 1", "sublink 2", "end-to-end", "sublink sum"]
    values = [
        sub1.mean_ms,
        sub2.mean_ms,
        e2e.mean_ms,
        sub1.mean_ms + sub2.mean_ms,
    ]
    text = render_bar_chart(labels, values, unit="ms")
    return FigureResult(
        figure=figure,
        title=title,
        text=text,
        data={
            "sublink1_ms": sub1.mean_ms,
            "sublink2_ms": sub2.mean_ms,
            "end_to_end_ms": e2e.mean_ms,
            "sum_ms": values[3],
        },
    )


@dataclass
class SeqGrowthRuns:
    """Paired direct/LSL traces for the sequence-number figures."""

    nbytes: int
    direct_curves: List[SeqCurve]
    sublink1_curves: List[SeqCurve]
    sublink2_curves: List[SeqCurve]  # on sublink 1's clock (fig 13's normalization)
    direct_retransmits: List[int]
    lsl_retransmits: List[int]


#: Memo for expensive trace collections shared by several figures
#: (figs 11-14 and 23-25 reuse the same 64 MB runs, as the paper does).
_RUNS_CACHE: Dict[tuple, "SeqGrowthRuns"] = {}


def seq_growth_runs(
    scenario: Scenario, nbytes: int, iters: Optional[int] = None
) -> SeqGrowthRuns:
    iters = iterations() if iters is None else iters
    seed0 = base_seed()
    key = (scenario.name, nbytes, iters, seed0)
    cached = _RUNS_CACHE.get(key)
    if cached is not None:
        return cached
    direct_curves, s1_curves, s2_curves = [], [], []
    d_rtx, l_rtx = [], []
    for i in range(iters):
        seed = seed0 + i
        d = run_direct_transfer(scenario, nbytes, seed=seed)
        l = run_lsl_transfer(scenario, nbytes, seed=seed)
        if not (d.completed and l.completed):
            continue
        direct_curves.append(curve_from_trace(d.client_trace, f"direct#{i}"))
        # both sublinks on the session clock, zeroed at sublink 1's
        # first data segment — the paper's "normalized with respect to
        # subpath 1"
        s1_abs = curve_from_trace(l.client_trace, f"sub1#{i}", time_origin="absolute")
        t0 = float(s1_abs.times[0]) if s1_abs.times.size else 0.0
        s1_curves.append(shift_curve(s1_abs, -t0))
        if l.sublink_traces:
            s2_abs = curve_from_trace(
                l.sublink_traces[0], f"sub2#{i}", time_origin="absolute"
            )
            s2_curves.append(shift_curve(s2_abs, -t0))
        d_rtx.append(d.client_trace.retransmit_count())
        l_rtx.append(
            l.client_trace.retransmit_count()
            + sum(t.retransmit_count() for t in l.sublink_traces)
        )
    if not direct_curves or not s1_curves:
        raise RuntimeError(f"{scenario.name}: no completed seq-growth runs")
    runs = SeqGrowthRuns(
        nbytes=nbytes,
        direct_curves=direct_curves,
        sublink1_curves=s1_curves,
        sublink2_curves=s2_curves,
        direct_retransmits=d_rtx,
        lsl_retransmits=l_rtx,
    )
    _RUNS_CACHE[key] = runs
    return runs


def _loss_case_figure(
    figure: str,
    title: str,
    runs: SeqGrowthRuns,
    which: str,
) -> FigureResult:
    """One of the min/median/max-loss comparisons (figs 15-17, 19-21,
    23-25): sublink1, sublink2 and direct curves for the chosen rank."""
    d_cases = select_loss_cases(
        list(range(len(runs.direct_curves))), runs.direct_retransmits
    )
    l_cases = select_loss_cases(
        list(range(len(runs.sublink1_curves))), runs.lsl_retransmits
    )
    d_idx = getattr(d_cases, which)
    l_idx = getattr(l_cases, which)
    curves = [
        SeqCurve(
            runs.sublink1_curves[l_idx].times,
            runs.sublink1_curves[l_idx].seqs,
            "sublink1",
        ),
        SeqCurve(
            runs.sublink2_curves[l_idx].times,
            runs.sublink2_curves[l_idx].seqs,
            "sublink2",
        )
        if l_idx < len(runs.sublink2_curves)
        else SeqCurve(
            runs.sublink1_curves[l_idx].times,
            runs.sublink1_curves[l_idx].seqs,
            "sublink2",
        ),
        SeqCurve(
            runs.direct_curves[d_idx].times,
            runs.direct_curves[d_idx].seqs,
            "direct",
        ),
    ]
    text = render_seq_growth(curves)
    return FigureResult(
        figure=figure,
        title=title,
        text=text,
        data={
            "direct_duration_s": curves[2].duration,
            "sublink1_duration_s": curves[0].duration,
            "direct_retransmits": runs.direct_retransmits[d_idx],
            "lsl_retransmits": runs.lsl_retransmits[l_idx],
            "rank": which,
        },
    )


def _average_growth_figure(
    figure: str, title: str, runs: SeqGrowthRuns
) -> FigureResult:
    avg_d = average_curves(runs.direct_curves, label="direct")
    avg_1 = average_curves(runs.sublink1_curves, label="sublink1")
    curves = [avg_1]
    if runs.sublink2_curves:
        curves.append(average_curves(runs.sublink2_curves, label="sublink2"))
    curves.append(avg_d)
    text = render_seq_growth(curves)
    return FigureResult(
        figure=figure,
        title=title,
        text=text,
        data={
            "direct_avg_duration_s": avg_d.duration,
            "sublink1_avg_duration_s": avg_1.duration,
        },
    )


# ---------------------------------------------------------------------------
# figures 3, 4, 9: RTT comparisons
# ---------------------------------------------------------------------------


def fig03() -> FigureResult:
    return rtt_comparison_figure(
        "fig03", "Average observed TCP RTT, Case 1 (UCSB->UIUC via Denver)",
        case1_uiuc_via_denver(),
    )


def fig04() -> FigureResult:
    return rtt_comparison_figure(
        "fig04", "Average observed TCP RTT, Case 2 (UCSB->UF via Houston)",
        case2_uf_via_houston(),
    )


def fig09() -> FigureResult:
    return rtt_comparison_figure(
        "fig09", "Average observed TCP RTT, Case 3 (UTK->UCSB wireless)",
        case3_wireless_utk(),
    )


# ---------------------------------------------------------------------------
# figures 5-8, 10: bandwidth vs transfer size
# ---------------------------------------------------------------------------


def fig05() -> FigureResult:
    return _bandwidth_figure(
        "fig05", "Bandwidth UCSB->UIUC, 32K-256K",
        case1_uiuc_via_denver(), [i * 32 * K for i in range(1, 9)],
    )


def fig06() -> FigureResult:
    return _bandwidth_figure(
        "fig06", "Bandwidth UCSB->UIUC, 1M-64M",
        case1_uiuc_via_denver(), [M << i for i in range(0, 7)],
    )


def fig07() -> FigureResult:
    return _bandwidth_figure(
        "fig07", "Bandwidth UCSB->UF, 32K-256K",
        case2_uf_via_houston(), [i * 32 * K for i in range(1, 9)],
    )


def fig08() -> FigureResult:
    return _bandwidth_figure(
        "fig08", "Bandwidth UCSB->UF, 1M-128M",
        case2_uf_via_houston(), [M << i for i in range(0, 8)],
    )


def fig10() -> FigureResult:
    return _bandwidth_figure(
        "fig10", "Bandwidth UTK->UCSB (wireless), 1M-256M (log sizes)",
        case3_wireless_utk(), [M << i for i in range(0, 9)],
    )


# ---------------------------------------------------------------------------
# figures 11-14: 64MB sequence growth, individuals and averages
# ---------------------------------------------------------------------------

_FIG11_SIZE = 64 * M


def _fig11_runs() -> SeqGrowthRuns:
    size = min(_FIG11_SIZE, max_size())
    return seq_growth_runs(case1_uiuc_via_denver(), size)


def fig11() -> FigureResult:
    runs = _fig11_runs()
    curves = runs.direct_curves + [
        average_curves(runs.direct_curves, label="average")
    ]
    return FigureResult(
        "fig11",
        "Direct TCP seq growth, 64MB UCSB->UIUC (individuals + average)",
        render_seq_growth(curves[-4:]),  # last few + average keep output sane
        data={"runs": len(runs.direct_curves),
              "avg_duration_s": curves[-1].duration},
    )


def fig12() -> FigureResult:
    runs = _fig11_runs()
    curves = runs.sublink1_curves + [
        average_curves(runs.sublink1_curves, label="average")
    ]
    return FigureResult(
        "fig12",
        "Sublink 1 seq growth, 64MB UCSB->UIUC (individuals + average)",
        render_seq_growth(curves[-4:]),
        data={"runs": len(runs.sublink1_curves),
              "avg_duration_s": curves[-1].duration},
    )


def fig13() -> FigureResult:
    runs = _fig11_runs()
    curves = runs.sublink2_curves + [
        average_curves(runs.sublink2_curves, label="average")
    ]
    return FigureResult(
        "fig13",
        "Sublink 2 seq growth (normalized to sublink 1), 64MB UCSB->UIUC",
        render_seq_growth(curves[-4:]),
        data={"runs": len(runs.sublink2_curves),
              "avg_duration_s": curves[-1].duration},
    )


def fig14() -> FigureResult:
    runs = _fig11_runs()
    return _average_growth_figure(
        "fig14", "Average seq growth, 64MB UCSB->UIUC: sublinks vs direct", runs
    )


# ---------------------------------------------------------------------------
# figures 15-25: loss-case comparisons at 4MB / 16MB / 64MB
# ---------------------------------------------------------------------------


def _case1_runs(size: int) -> SeqGrowthRuns:
    return seq_growth_runs(case1_uiuc_via_denver(), min(size, max_size()))


def fig15() -> FigureResult:
    return _loss_case_figure(
        "fig15", "4MB UCSB->UIUC, minimum (ideally zero) loss",
        _case1_runs(4 * M), "minimum",
    )


def fig16() -> FigureResult:
    return _loss_case_figure(
        "fig16", "4MB UCSB->UIUC, median loss", _case1_runs(4 * M), "median"
    )


def fig17() -> FigureResult:
    return _loss_case_figure(
        "fig17", "4MB UCSB->UIUC, maximum loss", _case1_runs(4 * M), "maximum"
    )


def fig18() -> FigureResult:
    return _average_growth_figure(
        "fig18", "4MB UCSB->UIUC, average seq growth", _case1_runs(4 * M)
    )


def fig19() -> FigureResult:
    return _loss_case_figure(
        "fig19", "16MB UCSB->UIUC, minimum loss", _case1_runs(16 * M), "minimum"
    )


def fig20() -> FigureResult:
    return _loss_case_figure(
        "fig20", "16MB UCSB->UIUC, median loss", _case1_runs(16 * M), "median"
    )


def fig21() -> FigureResult:
    return _loss_case_figure(
        "fig21", "16MB UCSB->UIUC, maximum loss", _case1_runs(16 * M), "maximum"
    )


def fig22() -> FigureResult:
    return _average_growth_figure(
        "fig22", "16MB UCSB->UIUC, average seq growth", _case1_runs(16 * M)
    )


def fig23() -> FigureResult:
    return _loss_case_figure(
        "fig23", "64MB UCSB->UIUC, minimum loss", _fig11_runs(), "minimum"
    )


def fig24() -> FigureResult:
    return _loss_case_figure(
        "fig24", "64MB UCSB->UIUC, median loss", _fig11_runs(), "median"
    )


def fig25() -> FigureResult:
    return _loss_case_figure(
        "fig25", "64MB UCSB->UIUC, maximum loss", _fig11_runs(), "maximum"
    )


# ---------------------------------------------------------------------------
# figures 26, 27: UF and wireless sequence growth
# ---------------------------------------------------------------------------


def fig26() -> FigureResult:
    runs = seq_growth_runs(case2_uf_via_houston(), min(32 * M, max_size()))
    return _average_growth_figure(
        "fig26",
        "32MB UCSB->UF seq growth (slopes close; sublink 1 is bottleneck)",
        runs,
    )


def fig27() -> FigureResult:
    size = min(256 * M, max_size())
    runs = seq_growth_runs(case3_wireless_utk(), size, iters=1)
    return _average_growth_figure(
        "fig27", "256MB wireless (UTK->UCSB) seq growth", runs
    )


# ---------------------------------------------------------------------------
# figures 28, 29: steady-state study (UCSB->OSU)
# ---------------------------------------------------------------------------


def fig28() -> FigureResult:
    return _bandwidth_figure(
        "fig28", "Bandwidth UCSB->OSU, 1MB-512MB (steady state; log sizes)",
        case4_osu_steady_state(), [M << i for i in range(0, 10)],
    )


def fig29() -> FigureResult:
    return _bandwidth_figure(
        "fig29", "Bandwidth UCSB->OSU, 32KB-1024KB",
        case4_osu_steady_state(), [32 * K << i for i in range(0, 6)],
    )


#: Registry for the CLI and the benchmarks.
ALL_FIGURES: Dict[str, Callable[[], FigureResult]] = {
    name: fn
    for name, fn in sorted(globals().items())
    if name.startswith("fig") and callable(fn)
}
