"""Named random streams.

Every stochastic component (each lossy link, each jitter source, the
workload generator) draws from its **own** named stream derived from a
single root seed. Adding or removing one consumer therefore never
perturbs the draws seen by the others — experiments stay reproducible
as the simulation grows, and per-stream seeding is stable across runs
and Python processes (no reliance on hash randomization).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across processes and Python
    versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(root_seed.to_bytes(16, "little", signed=True))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngRegistry:
    """Factory of named, independently-seeded ``random.Random`` streams.

    >>> r = RngRegistry(seed=42)
    >>> a = r.stream("link:ucsb-denver")
    >>> b = r.stream("link:denver-uiuc")
    >>> a is r.stream("link:ucsb-denver")   # streams are cached
    True
    >>> a is not b
    True
    """

    __slots__ = ("root_seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.root_seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name, rng in self._streams.items():
            rng.seed(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
