"""The discrete-event scheduler.

Time is a float in **seconds**. Events are callbacks scheduled for an
absolute simulation time; ties are broken by scheduling order so runs
are reproducible. Cancellation is O(1) (lazy deletion: the heap entry
is marked dead and skipped when popped), which matters because TCP
cancels and rearms its retransmission timer on almost every ACK.

Lazy deletion alone lets the heap bloat: a long run that rearms its RTO
timer per ACK can hold millions of dead entries, and every push/pop
pays log(dead + live). The simulator therefore counts dead entries and
**compacts** the heap in place once they outnumber the live ones,
rebuilding it from the surviving ``(time, seq, event)`` tuples.
Compaction never reorders live events — the tuples are unique and keep
their original ``seq`` — so run order (and thus any seeded simulation
outcome) is bit-identical with or without it.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Optional

#: Below this many dead entries compaction is pointless (the heap is
#: small enough that lazy skipping is cheaper than a rebuild).
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`.

    Heap entries are ``(time, seq, event)`` tuples so ordering uses
    C-level tuple comparison — ``Event`` itself never needs ``__lt__``,
    which profiling showed dominating large runs.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator",
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call repeatedly."""
        if self._cancelled:
            return
        self._cancelled = True
        if self.fn is not None:
            # Still sitting in the heap: account for the dead entry and
            # let the owning simulator decide whether to compact.
            self._sim._note_dead()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled and not cancelled."""
        return not self._cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_running",
        "_events_processed",
        "_dead",
        "_compactions",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list = []  # (time, seq, Event) tuples
        self._seq: int = 0
        self._running = False
        self._events_processed = 0
        self._dead = 0  # cancelled entries still in the heap
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)
        thanks to dead-entry accounting."""
        return len(self._heap) - self._dead

    @property
    def queue_len(self) -> int:
        """Heap length including lazily-cancelled entries (what the
        telemetry sampler polls; shrinks when the heap compacts)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed since construction (for profiling)."""
        return self._events_processed

    @property
    def compactions(self) -> int:
        """Times the heap has been compacted (for tests/telemetry)."""
        return self._compactions

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args, self)
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args, self)
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule with **no cancellation handle**: the heap entry is a
        bare ``(time, seq, fn, args)`` tuple, skipping the :class:`Event`
        allocation. For hot paths that schedule hundreds of thousands of
        never-cancelled callbacks (one per packet per link). Fast entries
        are dropped by :meth:`clear` like any other."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self._now + delay, seq, fn, args))

    def schedule_at_fast(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn, args))

    def _note_dead(self) -> None:
        """One heap entry just went dead; compact when the dead entries
        outnumber the live ones (amortized O(1) per cancellation)."""
        dead = self._dead + 1
        self._dead = dead
        if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries, in place.

        In place matters: ``run()`` holds a local alias to the heap
        list, and a callback may cancel enough events to trigger
        compaction mid-run. Slice-assignment keeps the alias valid.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap if len(entry) == 4 or not entry[2]._cancelled
        ]
        heapq.heapify(heap)
        self._dead = 0
        self._compactions += 1

    def step(self) -> bool:
        """Run the single next live event. Returns False if queue is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:  # fast entry: (time, seq, fn, args)
                self._now = entry[0]
                self._events_processed += 1
                entry[2](*entry[3])
                return True
            time, _, ev = entry
            if ev._cancelled:
                self._dead -= 1
                continue
            self._now = time
            fn, args = ev.fn, ev.args
            ev.fn = None  # type: ignore[assignment]  # mark consumed, break ref cycles
            ev.args = ()
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return (even if the queue drained earlier), so
        repeated ``run(until=...)`` calls behave like wall-clock epochs.
        """
        if self._running:
            raise SimulationError("re-entrant Simulator.run() call")
        self._running = True
        # The event loop allocates short-lived acyclic objects (heap
        # tuples, stream chunks) at MHz rates, and Event handles break
        # their own reference cycles when consumed — so the cyclic
        # collector finds nothing here and its generation-0 scans are
        # pure overhead (~5% of wall time). Park it for the duration.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            heap = self._heap
            pop = heapq.heappop
            push = heapq.heappush
            if until is None and max_events is None:
                # Hot path: no stop conditions to test per event.
                while heap:
                    entry = pop(heap)
                    if len(entry) == 4:  # fast entry: (time, seq, fn, args)
                        self._now = entry[0]
                        self._events_processed += 1
                        entry[2](*entry[3])
                        continue
                    time, _, ev = entry
                    if ev._cancelled:
                        self._dead -= 1
                        continue
                    self._now = time
                    fn, args = ev.fn, ev.args
                    ev.fn = None  # type: ignore[assignment]
                    ev.args = ()
                    self._events_processed += 1
                    fn(*args)
                return
            if max_events is None:
                # until-only: one boundary compare per event
                horizon = until
                while heap:
                    entry = pop(heap)
                    if len(entry) == 4:  # fast entry: (time, seq, fn, args)
                        time = entry[0]
                        if time > horizon:
                            push(heap, entry)  # same tuple: order preserved
                            break
                        self._now = time
                        self._events_processed += 1
                        entry[2](*entry[3])
                        continue
                    time, _, ev = entry
                    if ev._cancelled:
                        self._dead -= 1
                        continue
                    if time > horizon:
                        push(heap, entry)
                        break
                    self._now = time
                    fn, args = ev.fn, ev.args
                    ev.fn = None  # type: ignore[assignment]
                    ev.args = ()
                    self._events_processed += 1
                    fn(*args)
                if until > self._now:
                    self._now = until
                return
            horizon = until if until is not None else float("inf")
            budget = max_events
            while heap:
                entry = pop(heap)
                if len(entry) == 4:  # fast entry: (time, seq, fn, args)
                    time = entry[0]
                    if time > horizon or budget == 0:
                        push(heap, entry)  # same tuple: order preserved
                        break
                    if budget > 0:
                        budget -= 1
                    self._now = time
                    self._events_processed += 1
                    entry[2](*entry[3])
                    continue
                time, _, ev = entry
                if ev._cancelled:
                    self._dead -= 1
                    continue
                if time > horizon or budget == 0:
                    push(heap, entry)
                    break
                if budget > 0:
                    budget -= 1
                self._now = time
                fn, args = ev.fn, ev.args
                ev.fn = None  # type: ignore[assignment]
                ev.args = ()
                self._events_processed += 1
                fn(*args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def clear(self) -> None:
        """Drop every pending event (used between independent runs).

        Outstanding :class:`Event` handles are **cancelled**, not just
        forgotten: a timer object holding one must see ``pending`` go
        False, otherwise it would skip rearming against the reset
        queue and silently never fire again.
        """
        for entry in self._heap:
            if len(entry) == 4:
                continue  # fast entries have no outside handle
            ev = entry[2]
            if not ev._cancelled:
                ev._cancelled = True
            ev.fn = None  # type: ignore[assignment]  # break ref cycles
            ev.args = ()
        self._heap.clear()
        self._dead = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._heap)}>"
