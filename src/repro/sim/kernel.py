"""The discrete-event scheduler.

Time is a float in **seconds**. Events are callbacks scheduled for an
absolute simulation time; ties are broken by scheduling order so runs
are reproducible. Cancellation is O(1) (lazy deletion: the heap entry
is marked dead and skipped when popped), which matters because TCP
cancels and rearms its retransmission timer on almost every ACK.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`.

    Heap entries are ``(time, seq, event)`` tuples so ordering uses
    C-level tuple comparison — ``Event`` itself never needs ``__lt__``,
    which profiling showed dominating large runs.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call repeatedly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled and not cancelled."""
        return not self._cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_events_processed")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list = []  # (time, seq, Event) tuples
        self._seq: int = 0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, ev in self._heap if not ev._cancelled)

    @property
    def queue_len(self) -> int:
        """Heap length including lazily-cancelled entries — O(1), which
        is what the telemetry sampler polls (``pending_count`` is O(n))."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed since construction (for profiling)."""
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._seq += 1
        return ev

    def step(self) -> bool:
        """Run the single next live event. Returns False if queue is empty."""
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev._cancelled:
                continue
            self._now = time
            fn, args = ev.fn, ev.args
            ev.fn = None  # type: ignore[assignment]  # mark consumed, break ref cycles
            ev.args = ()
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return (even if the queue drained earlier), so
        repeated ``run(until=...)`` calls behave like wall-clock epochs.
        """
        if self._running:
            raise SimulationError("re-entrant Simulator.run() call")
        self._running = True
        try:
            heap = self._heap
            pop = heapq.heappop
            budget = max_events if max_events is not None else -1
            while heap:
                time, _, ev = heap[0]
                if ev._cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                if budget == 0:
                    break
                pop(heap)
                self._now = time
                fn, args = ev.fn, ev.args
                ev.fn = None  # type: ignore[assignment]
                ev.args = ()
                self._events_processed += 1
                fn(*args)
                if budget > 0:
                    budget -= 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop every pending event (used between independent runs)."""
        self._heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._heap)}>"
