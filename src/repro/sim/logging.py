"""Sim-time-stamped event logging.

A tiny structured logger: components append ``(time, source, event,
detail)`` records. Disabled by default (a single boolean check in the
hot path); tests and the analysis layer enable it to inspect protocol
behaviour without parsing text.

The logger is also the stack's **event bus**: when telemetry is
attached (:meth:`repro.telemetry.Telemetry.attach`) every record flows
through ``sink`` into the flight recorder and event counters, so there
is one event stream whether or not in-memory record keeping is on.

Long fault-injection runs use the bounding knobs: ``capacity`` keeps
only the newest records (ring semantics), and ``set_filter`` restricts
collection to chosen sources/events so memory cannot grow without
bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class LogRecord:
    """One logged event."""

    time: float
    source: str
    event: str
    detail: Any = None

    def __str__(self) -> str:
        if self.detail is None:
            return f"[{self.time:12.6f}] {self.source}: {self.event}"
        return f"[{self.time:12.6f}] {self.source}: {self.event} {self.detail!r}"


class SimLogger:
    """Collects :class:`LogRecord` objects when ``enabled``.

    ``records`` is a plain list by default; passing ``capacity`` makes
    it a bounded ring (oldest records dropped, ``total_logged`` still
    counts everything that passed the filter).
    """

    def __init__(
        self,
        sim: Simulator,
        enabled: bool = False,
        capacity: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.enabled = enabled
        self.capacity = capacity
        self.records: Union[List[LogRecord], "deque[LogRecord]"] = (
            deque(maxlen=capacity) if capacity is not None else []
        )
        self.total_logged = 0
        #: Event-bus hook: called with every record that passes the
        #: filter, even while ``enabled`` is False (telemetry wires the
        #: flight recorder here).
        self.sink: Optional[Callable[[LogRecord], None]] = None
        self._only_sources: Optional[frozenset] = None
        self._only_events: Optional[frozenset] = None

    # -- filtering ------------------------------------------------------

    def set_filter(
        self,
        sources: Optional[Iterable[str]] = None,
        events: Optional[Iterable[str]] = None,
    ) -> None:
        """Restrict collection to the given sources and/or events
        (``None`` clears that dimension). Applies to both the stored
        records and the sink — one stream, one filter."""
        self._only_sources = frozenset(sources) if sources is not None else None
        self._only_events = frozenset(events) if events is not None else None

    def log(self, source: str, event: str, detail: Any = None) -> None:
        """Append a record if logging is enabled (cheap no-op otherwise)."""
        if not self.enabled and self.sink is None:
            return
        if self._only_sources is not None and source not in self._only_sources:
            return
        if self._only_events is not None and event not in self._only_events:
            return
        rec = LogRecord(self.sim.now, source, event, detail)
        if self.enabled:
            self.records.append(rec)
            self.total_logged += 1
        if self.sink is not None:
            self.sink(rec)

    def clear(self) -> None:
        self.records.clear()

    def filter(
        self, source: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[LogRecord]:
        """Iterate records matching the given source and/or event name."""
        for rec in self.records:
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def count(self, source: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.filter(source, event))

    @property
    def dropped(self) -> int:
        """Records evicted by the capacity ring."""
        return self.total_logged - len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = f"/{self.capacity}" if self.capacity is not None else ""
        return (
            f"<SimLogger enabled={self.enabled} "
            f"records={len(self.records)}{cap}>"
        )
