"""Sim-time-stamped event logging.

A tiny structured logger: components append ``(time, source, event,
detail)`` records. Disabled by default (a single boolean check in the
hot path); tests and the analysis layer enable it to inspect protocol
behaviour without parsing text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class LogRecord:
    """One logged event."""

    time: float
    source: str
    event: str
    detail: Any = None

    def __str__(self) -> str:
        if self.detail is None:
            return f"[{self.time:12.6f}] {self.source}: {self.event}"
        return f"[{self.time:12.6f}] {self.source}: {self.event} {self.detail!r}"


@dataclass
class SimLogger:
    """Collects :class:`LogRecord` objects when ``enabled``."""

    sim: Simulator
    enabled: bool = False
    records: List[LogRecord] = field(default_factory=list)

    def log(self, source: str, event: str, detail: Any = None) -> None:
        """Append a record if logging is enabled (cheap no-op otherwise)."""
        if self.enabled:
            self.records.append(LogRecord(self.sim.now, source, event, detail))

    def clear(self) -> None:
        self.records.clear()

    def filter(
        self, source: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[LogRecord]:
        """Iterate records matching the given source and/or event name."""
        for rec in self.records:
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def count(self, source: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.filter(source, event))
