"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small and fast: a binary-heap event queue
keyed by ``(time, sequence)`` so that events scheduled for the same
instant fire in scheduling order, which makes every simulation fully
deterministic for a given seed.

Public API
----------
:class:`Simulator`
    The event loop: ``schedule`` / ``schedule_at`` / ``run``.
:class:`Event`
    Handle returned by ``schedule``; supports cancellation.
:class:`Timer`
    Restartable one-shot timer built on the simulator (used for TCP RTO,
    delayed ACKs, etc.).
:class:`RngRegistry`
    Named, independently-seeded random streams so that adding a new
    consumer of randomness does not perturb existing ones.
:class:`SimLogger`
    Cheap sim-time-stamped event log used by tests and trace analysis.
"""

from repro.sim.kernel import Event, Simulator, SimulationError
from repro.sim.timer import Timer
from repro.sim.rng import RngRegistry
from repro.sim.logging import LogRecord, SimLogger

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Timer",
    "RngRegistry",
    "SimLogger",
    "LogRecord",
]
