"""Restartable one-shot timer.

TCP needs timers that are constantly rearmed (the retransmission timer
moves on every ACK; the delayed-ACK timer on every segment). ``Timer``
wraps the cancel-and-reschedule dance so protocol code reads naturally::

    self.rto_timer = Timer(sim, self._on_rto)
    ...
    self.rto_timer.restart(self.rto)       # arm / rearm
    self.rto_timer.stop()                  # disarm
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Event, Simulator


class Timer:
    """A one-shot timer bound to a simulator and a callback.

    Rearming is *lazy*: when ``restart`` pushes the deadline later (the
    overwhelmingly common case — TCP's RTO moves forward on every ACK)
    the already-scheduled event is left in place; when it fires early
    it notices the later deadline and reschedules itself once. This
    turns two heap operations per ACK into roughly one per RTO period.
    """

    __slots__ = ("_sim", "_fn", "_args", "_event", "_deadline", "name")

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> None:
        self._sim = sim
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None
        self._deadline: Optional[float] = None
        self.name = name

    @property
    def armed(self) -> bool:
        """True if the timer is scheduled and will fire.

        A timer can lose its event underneath it when the owning
        simulator is cleared between runs; report (and record) the
        disarm instead of claiming an event that will never fire.
        """
        if self._deadline is None:
            return False
        ev = self._event
        if ev is not None and not ev.pending:
            self._deadline = None
            self._event = None
            return False
        return True

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute firing time, or None if disarmed."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer. Raises if already armed (use ``restart``)."""
        if self.armed:
            raise RuntimeError(f"timer {self.name!r} already armed")
        self.restart(delay)

    def restart(self, delay: float) -> None:
        """Arm the timer, superseding any previous deadline."""
        deadline = self._sim.now + delay
        self._deadline = deadline
        ev = self._event
        if ev is not None:
            # inline ev.pending (attribute tests beat the property call
            # on this per-ACK path)
            if not ev._cancelled and ev.fn is not None and ev.time <= deadline:
                return  # existing event fires first and will re-arm
            ev.cancel()
        self._event = self._sim.schedule_at(deadline, self._fire)

    def stop(self) -> None:
        """Disarm the timer. Idempotent.

        Lazy, like rearming: the scheduled event stays in the heap and
        disarms itself when it fires (``_fire`` sees the cleared
        deadline), or gets reused outright by a ``restart`` whose
        deadline lands at or past its fire time. TCP's delayed-ACK
        timer is stopped and rearmed once per segment pair; reuse makes
        that an attribute write instead of an Event cancel + realloc.
        """
        self._deadline = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:
            return  # stopped (lazily) between scheduling and firing
        if deadline > self._sim.now:
            # deadline was pushed later since this event was queued
            self._event = self._sim.schedule_at(deadline, self._fire)
            return
        self._deadline = None
        self._fn(*self._args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.armed:
            return f"<Timer {self.name!r} fires@{self._deadline:.6f}>"
        return f"<Timer {self.name!r} disarmed>"
