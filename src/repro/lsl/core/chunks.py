"""Stream chunks as the core sees them.

The simulator models payload as runs of **real** bytes (``data`` set)
or **virtual** bytes (``data is None`` — a length with no materialized
content, so a 512 MB simulated transfer costs window-proportional
memory). The real-socket stack only ever produces real chunks. The
core is agnostic: every machine accepts anything matching
:class:`ChunkLike` — structurally compatible with the simulator's
``repro.tcp.buffers.StreamChunk`` — and produces :class:`Chunk`.

Both types are ``NamedTuple(length, data)``, so a core-produced
``Chunk`` compares equal to the simulator's ``StreamChunk`` with the
same contents and flows through simulator buffers unchanged.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Protocol, Tuple, runtime_checkable


@runtime_checkable
class ChunkLike(Protocol):
    """Anything with a byte count and optional materialized bytes."""

    @property
    def length(self) -> int: ...

    @property
    def data(self) -> Optional[bytes]: ...


class Chunk(NamedTuple):
    """A run of in-order stream bytes: real (``data``) or virtual."""

    length: int
    data: Optional[bytes]

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    @classmethod
    def real(cls, data: bytes) -> "Chunk":
        return cls(len(data), data)

    @classmethod
    def virtual(cls, length: int) -> "Chunk":
        return cls(length, None)


def split_chunk(chunk: ChunkLike, at: int) -> Tuple[Chunk, Chunk]:
    """Split ``chunk`` into a head of ``at`` bytes and the remainder."""
    if not (0 <= at <= chunk.length):
        raise ValueError(f"split point {at} outside chunk of {chunk.length}")
    data = chunk.data
    if data is None:
        return Chunk(at, None), Chunk(chunk.length - at, None)
    return Chunk(at, data[:at]), Chunk(chunk.length - at, data[at:])
