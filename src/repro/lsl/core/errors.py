"""LSL error hierarchy (shared by every stack)."""

from __future__ import annotations


class LslError(RuntimeError):
    """Base class for session-layer errors."""


class ProtocolError(LslError):
    """Malformed or unexpected LSL wire data."""


class RouteError(LslError):
    """Invalid loose source route (empty, bad hop, self-loop...)."""


class SessionUnknown(LslError):
    """A rebind referenced a session id the server does not know."""


class DigestMismatch(LslError):
    """End-to-end MD5 verification failed."""


class DepotDown(RouteError):
    """A depot on the route crashed or was shut down mid-session."""


class FailoverExhausted(LslError):
    """Session recovery gave up: every candidate route/attempt failed."""
