"""Protocol events the core emits for observability.

The state machines know *what happened at the protocol level* —
session established, rebind accepted, resume offset granted, digest
verified, relay forwarded — but must not know about telemetry,
clocks, or any particular exporter. They therefore emit
:class:`ProtocolEvent` records through an optional observer callback;
``repro.telemetry.protocol`` maps them onto the metrics/span plane,
identically for the simulator and the real-socket stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

#: Values an event may carry (kept JSON-friendly for exporters).
EventValue = Union[str, int, float, bool, None]

ProtocolObserver = Callable[["ProtocolEvent"], None]


@dataclass(frozen=True)
class ProtocolEvent:
    """One protocol-level occurrence, identified by ``kind``.

    Kinds emitted by the core machines:

    ``handshake-established``  client handshake completed (ack [+offset])
    ``resume-granted``         negotiated resume offset decided (server)
    ``session-accepted``       fresh session accepted
    ``session-rebound``        rebind attached to an existing session
    ``session-restarted``      fresh connect displaced a stale attachment
    ``session-rejected``       header/registry validation refused a sublink
    ``payload-complete``       declared length received, digest verified
    ``digest-mismatch``        end-to-end MD5 check failed
    ``session-suspended``      EOF mid-payload; state retained for rebind
    ``relay-forward``          depot parsed a header and chose a next hop
    ``relay-rejected``         depot refused a sublink

    Kinds emitted by the striping machines
    (:mod:`repro.lsl.core.striping`):

    ``stripe-redundant``       a redundant copy (duplicate stripe,
                               parity block, duplicate trailer) was
                               dealt to an extra sublink
    ``stripe-redealt``         a lost sublink's uncovered stripes were
                               re-queued to the survivors
    ``stripe-reconstructed``   the assembler rebuilt a missing block
                               from a parity group
    ``duplicate-discarded``    already-covered bytes arrived (redundant
                               copy or re-deal overlap) and were dropped
    ``sublink-migrated``       the re-planner moved a sublink to a new
                               route mid-transfer

    Kinds emitted by transport drivers about their own lifecycle (the
    core never sees these conditions — they happen at the socket/task
    layer — but they share the event plane so depot exposition and the
    telemetry bridge treat them uniformly):

    ``relay-failed``           a depot relay session died; ``reason``
                               carries the driver-side exception
    ``accept-error``           a transient accept() failure (EMFILE,
                               ECONNABORTED, ...) was retried
    ``session-expired``        the TTL sweep dropped a suspended
                               session that never rebound
    ``session-takeover``       a rebind claimed a session owned by a
                               different cluster worker (owner-epoch
                               compare-and-swap bumped the epoch)

    Kinds emitted by transport drivers (congestion-state annotation —
    the senders' congestion controllers report their state machine so
    the diagnosis engine can decompose time-in-state per sublink):

    ``cc-open``                sender congestion controller came up
    ``cc-state``               congestion state changed (from -> to)
    ``cc-close``               sender connection finished
    """

    kind: str
    session: str  # short (8 hex char) session id, "" when unknown
    detail: Dict[str, EventValue] = field(default_factory=dict)


#: Every event kind the core machines and transport drivers emit.
#: Consumers (the telemetry bridge, the diagnosis engine) treat any
#: other kind as *unknown* — counted, never silently dropped.
KNOWN_KINDS: frozenset[str] = frozenset(
    {
        "handshake-established",
        "resume-granted",
        "session-accepted",
        "session-rebound",
        "session-restarted",
        "session-rejected",
        "payload-complete",
        "digest-mismatch",
        "session-suspended",
        "relay-forward",
        "relay-rejected",
        "stripe-redundant",
        "stripe-redealt",
        "stripe-reconstructed",
        "duplicate-discarded",
        "sublink-migrated",
        "relay-failed",
        "accept-error",
        "session-expired",
        "session-takeover",
        "cc-open",
        "cc-state",
        "cc-close",
    }
)

#: Congestion states a sender-side transport may report in ``cc-state``
#: events. ``zero-window`` is the transport-level name; the diagnosis
#: engine reports it as "relay-buffer-limited" because in a cascade the
#: receiver whose window closed is a relay buffer.
CC_STATES: frozenset[str] = frozenset(
    {
        "connecting",
        "slow-start",
        "congestion-avoidance",
        "fast-recovery",
        "rto-stalled",
        "zero-window",
        "app-limited",
    }
)


def emit(
    observer: Optional[ProtocolObserver],
    kind: str,
    session: str,
    **detail: EventValue,
) -> None:
    """Fire ``observer`` with a fresh event if one is attached."""
    if observer is None:
        return
    observer(ProtocolEvent(kind=kind, session=session, detail=detail))
