"""Server-side payload ingestion, trailer collection, digest check.

:class:`PayloadReceiver` is the machine behind every LSL receiving
endpoint: it splits the inbound stream into payload (delivered to the
application) and the digest trailer, verifies the end-to-end MD5 at
the declared boundary, and classifies EOF — completion, suspension
(mobility: keep state for a rebind), or plain close. It survives
transport rebinds untouched because it holds no transport state.

:class:`FramedReceiver` adapts the same machine to framed streams
arriving *in order* on a single sublink (the real-socket framed path;
the simulator's striped server does its own multi-sublink reassembly
on top of :class:`~repro.lsl.core.framing.FrameDecoder`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.lsl.core.chunks import Chunk, ChunkLike, split_chunk
from repro.lsl.core.digest import DIGEST_LEN, StreamDigest
from repro.lsl.core.errors import DigestMismatch, ProtocolError
from repro.lsl.core.events import ProtocolObserver, emit
from repro.lsl.core.framing import FrameDecoder
from repro.lsl.core.wire import STREAM_UNTIL_FIN, LslHeader


@dataclass(frozen=True)
class Deliver:
    """Payload for the application (in stream order)."""

    chunk: Chunk


@dataclass(frozen=True)
class Completed:
    """The session finished; ``digest_ok`` is None without a digest."""

    digest_ok: Optional[bool]


@dataclass(frozen=True)
class Failed:
    """The session is dead; the driver should abort the sublink."""

    error: Exception


ReceiverEvent = Union[Deliver, Completed, Failed]

#: EOF dispositions (:meth:`PayloadReceiver.feed_eof`).
EOF_COMPLETE = "complete"  # stream-until-FIN: EOF is completion
EOF_SUSPEND = "suspend"  # mid-payload: keep state for a rebind
EOF_CLOSE = "close"  # nothing left to do; close the transport


class PayloadReceiver:
    """Sans-I/O receiving side of one (unframed) LSL session."""

    def __init__(
        self,
        header: LslHeader,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.header = header
        self._observer = observer
        self.digest = StreamDigest()
        self.payload_received = 0
        self._trailer = bytearray()
        self.digest_ok: Optional[bool] = None
        self.complete = False
        self.failed: Optional[Exception] = None

    # -- session-layer framing --------------------------------------------

    @property
    def session_id(self) -> bytes:
        return self.header.session_id

    @property
    def declared_length(self) -> Optional[int]:
        pl = self.header.payload_length
        return None if pl == STREAM_UNTIL_FIN else pl

    @property
    def finished(self) -> bool:
        return self.complete or self.failed is not None

    def rebind(self, header: LslHeader) -> None:
        """Adopt the header of a replacement sublink (state carries over)."""
        self.header = header

    # -- ingestion ---------------------------------------------------------

    def feed(self, chunks: List[ChunkLike]) -> List[ReceiverEvent]:
        """Consume transport chunks; returns events in stream order.

        ``Deliver`` events carry payload for the application;
        ``Completed``/``Failed`` is always last when present, and once
        emitted further feeds return nothing.
        """
        events: List[ReceiverEvent] = []
        if self.finished:
            return events
        declared = self.declared_length
        for raw in chunks:
            if self.finished:
                break
            chunk = Chunk(raw.length, raw.data)
            if declared is None:
                self._deliver(chunk, events)
                continue
            payload_room = declared - self.payload_received
            tail: Optional[Chunk] = chunk
            if payload_room > 0:
                if chunk.length <= payload_room:
                    self._deliver(chunk, events)
                    tail = None
                else:
                    head, tail = split_chunk(chunk, payload_room)
                    self._deliver(head, events)
            if tail is not None and tail.length > 0:
                self._feed_trailer(tail, events)
        self._maybe_complete(events)
        return events

    def feed_eof(self) -> str:
        """Classify a clean FIN: one of the ``EOF_*`` dispositions."""
        if self.finished:
            return EOF_CLOSE
        declared = self.declared_length
        if declared is None:
            # stream-until-FIN: EOF is completion
            self.complete = True
            emit(self._observer, "payload-complete", self.header.short_id,
                 payload_received=self.payload_received, digest_ok=None)
            return EOF_COMPLETE
        if self.payload_received < declared:
            # could be a mobility event: keep state for a rebind
            emit(self._observer, "session-suspended", self.header.short_id,
                 payload_received=self.payload_received)
            return EOF_SUSPEND
        return EOF_CLOSE

    # -- internals ---------------------------------------------------------

    def _deliver(self, chunk: Chunk, events: List[ReceiverEvent]) -> None:
        self.payload_received += chunk.length
        self.digest.update_chunk(chunk)
        events.append(Deliver(chunk))

    def _feed_trailer(self, chunk: Chunk, events: List[ReceiverEvent]) -> None:
        if not self.header.digest:
            self._fail(ProtocolError("payload overrun past declared length"), events)
            return
        if chunk.data is None:
            self._fail(ProtocolError("virtual bytes in digest trailer"), events)
            return
        self._trailer.extend(chunk.data)
        if len(self._trailer) > DIGEST_LEN:
            self._fail(ProtocolError("trailer overrun"), events)

    def _maybe_complete(self, events: List[ReceiverEvent]) -> None:
        declared = self.declared_length
        if declared is None or self.finished:
            return
        if self.payload_received < declared:
            return
        if self.header.digest:
            if len(self._trailer) < DIGEST_LEN:
                return  # trailer still in flight
            expected = bytes(self._trailer)
            actual = self.digest.digest()
            self.digest_ok = expected == actual
            if not self.digest_ok:
                emit(self._observer, "digest-mismatch", self.header.short_id,
                     got=expected.hex()[:8], want=actual.hex()[:8])
                self._fail(
                    DigestMismatch(
                        f"session {self.header.short_id}: "
                        f"got {expected.hex()[:8]} want {actual.hex()[:8]}"
                    ),
                    events,
                )
                return
        self.complete = True
        emit(self._observer, "payload-complete", self.header.short_id,
             payload_received=self.payload_received, digest_ok=self.digest_ok)
        events.append(Completed(self.digest_ok))

    def _fail(self, error: Exception, events: List[ReceiverEvent]) -> None:
        if self.failed is not None:
            return
        self.failed = error
        events.append(Failed(error))


class FramedReceiver:
    """In-order framed stream feeding a :class:`PayloadReceiver`.

    Accepts FLAG_FRAMED streams whose frames arrive sequentially on one
    sublink (offsets contiguous from the resume point; the trailer
    frame at ``offset == payload length`` carries the MD5). Multi-
    sublink, out-of-order striping needs a reassembly buffer and lives
    with the striped server, not here.
    """

    def __init__(
        self,
        header: LslHeader,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        if header.payload_length == STREAM_UNTIL_FIN:
            raise ProtocolError("framed sessions require a declared length")
        self.inner = PayloadReceiver(header, observer)
        self._decoder = FrameDecoder(self._on_frame_payload)
        self._events: List[ReceiverEvent] = []

    @property
    def header(self) -> LslHeader:
        return self.inner.header

    @property
    def session_id(self) -> bytes:
        return self.inner.session_id

    @property
    def payload_received(self) -> int:
        return self.inner.payload_received

    @property
    def digest_ok(self) -> Optional[bool]:
        return self.inner.digest_ok

    @property
    def complete(self) -> bool:
        return self.inner.complete

    @property
    def failed(self) -> Optional[Exception]:
        return self.inner.failed

    @property
    def finished(self) -> bool:
        return self.inner.finished

    def rebind(self, header: LslHeader) -> None:
        """Adopt a replacement sublink; the new sublink starts its own
        frame stream, so any torn-frame decoder state is discarded."""
        self.inner.rebind(header)
        self._decoder = FrameDecoder(self._on_frame_payload)

    def feed(self, chunks: List[ChunkLike]) -> List[ReceiverEvent]:
        if self.inner.finished:
            return []
        try:
            self._decoder.feed(chunks)
        except ProtocolError as exc:
            if self.inner.failed is None:
                self.inner.failed = exc
                self._events.append(Failed(exc))
        events, self._events = self._events, []
        return events

    def feed_eof(self) -> str:
        if not self.inner.finished and self._decoder.mid_frame:
            # a torn frame is indistinguishable from payload loss:
            # suspend and let a rebind replay from the resume offset
            emit(self.inner._observer, "session-suspended",
                 self.header.short_id,
                 payload_received=self.inner.payload_received)
            return EOF_SUSPEND
        return self.inner.feed_eof()

    def _on_frame_payload(self, offset: int, chunk: Chunk) -> None:
        declared = self.inner.declared_length
        assert declared is not None
        if offset >= declared:
            # trailer frame territory: feed the MD5 bytes directly
            expected_pos = declared + len(self.inner._trailer)
            if offset != expected_pos:
                self.inner._fail(
                    ProtocolError(f"trailer frame at {offset}, want {expected_pos}"),
                    self._events,
                )
                return
            self.inner._feed_trailer(chunk, self._events)
            self.inner._maybe_complete(self._events)
            return
        if offset != self.inner.payload_received:
            self.inner._fail(
                ProtocolError(
                    f"out-of-order frame at {offset}, "
                    f"expected {self.inner.payload_received} "
                    "(single-sublink framed streams must be sequential)"
                ),
                self._events,
            )
            return
        if chunk.length == 0:
            return
        self.inner._deliver(chunk, self._events)
        self.inner._maybe_complete(self._events)
