"""The LSL wire header: codec and incremental parser.

The header travels as the first real bytes of each sublink's TCP
stream. A depot parses it, advances ``hop_index``, and forwards the
re-encoded header down the next sublink before relaying payload.

Layout (big-endian)::

    offset  size  field
    0       4     magic  b"LSL1"
    4       1     version (1)
    5       1     flags   (bit 0: MD5 trailer follows payload,
                           bit 1: rebind of an existing session,
                           bit 2: synchronous establishment — the server
                                  acks the session through the cascade
                                  before the client sends payload,
                           bit 3: framed payload — see repro.lsl.framing,
                           bit 4: resume query — rebind asks the server
                                  for the authoritative resume offset,
                           bit 5: trace — a 25-byte trace descriptor
                                  follows the route section)
    6       16    session id
    22      8     payload length (0xFFFF_FFFF_FFFF_FFFF = stream until FIN)
    30      8     resume offset (rebind only; else 0)
    38      1     hop index (which route entry the *receiver* is)
    39      1     hop count N (1..16)
    40      -     N hops: 1 byte host length, host utf-8, 2 bytes port
    -       25    trace descriptor, only when FLAG_TRACE is set:
                  16 bytes trace id, 8 bytes parent span id, 1 byte
                  trace hop index

The final hop is the server; earlier hops are depots. The paper calls
this the "loose source route" through session-layer routers.

:class:`HeaderAccumulator` is the incremental (feed-based) parser both
stacks use: feed stream bytes as the transport delivers them; it
never claims more than the header and reports any surplus payload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import List, NamedTuple, Optional, Tuple

from repro.lsl.core.errors import ProtocolError, RouteError

HEADER_MAGIC = b"LSL1"
#: Single byte the server sends back through the cascade to confirm
#: synchronous session establishment.
SESSION_ACK = b"\x06"
HEADER_VERSION = 1
STREAM_UNTIL_FIN = 0xFFFF_FFFF_FFFF_FFFF
MAX_HOPS = 16

FLAG_DIGEST = 0x01
FLAG_REBIND = 0x02
FLAG_SYNC = 0x04
FLAG_FRAMED = 0x08
#: Negotiated resume: on a rebind, the client does not claim an offset —
#: it asks. The server replies SESSION_ACK followed by 8 bytes
#: (big-endian) of its contiguously-received payload count, and the
#: client resumes from there. Requires FLAG_REBIND and FLAG_SYNC.
FLAG_RESUME_QUERY = 0x10
#: Distributed-tracing context rides the header: a fixed 25-byte
#: descriptor (16-byte trace id, 8-byte parent span id, 1-byte hop
#: index) follows the route section. Negotiated like FLAG_FRAMED —
#: untraced peers never see the flag and their headers are
#: byte-identical to the pre-trace wire format.
FLAG_TRACE = 0x20

_FIXED = struct.Struct(">4sBB16sQQBB")
_TRACE = struct.Struct(">16sQB")


class RouteHop(NamedTuple):
    """One entry of the loose source route."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class TraceContext:
    """Trace context carried on the wire when FLAG_TRACE is set.

    ``trace_id`` names the whole end-to-end transfer (rebinds and
    resumed attempts reuse it); ``parent_span`` is the span id of the
    sending process's active span, so each receiver can parent its own
    span correctly; ``hop`` counts traced processes crossed so far.
    """

    trace_id: bytes  # 16 bytes, same width as a session id
    parent_span: int = 0  # 0 = root (no parent)
    hop: int = 0

    def __post_init__(self) -> None:
        if len(self.trace_id) != 16:
            raise ProtocolError(
                f"trace id must be 16 bytes, got {len(self.trace_id)}"
            )
        if not (0 <= self.parent_span < 1 << 64):
            raise ProtocolError(f"bad parent span {self.parent_span}")
        if not (0 <= self.hop <= 255):
            raise ProtocolError(f"bad trace hop {self.hop}")

    @property
    def short_id(self) -> str:
        """First 8 hex chars of the trace id (logs and span attrs)."""
        return self.trace_id.hex()[:8]

    def child(self, parent_span: int) -> "TraceContext":
        """The context a traced process forwards downstream: same
        trace, this process's span as the parent, hop advanced."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span=parent_span,
            hop=min(self.hop + 1, 255),
        )


@dataclass(frozen=True)
class LslHeader:
    """Parsed LSL header."""

    session_id: bytes  # 16 bytes
    route: Tuple[RouteHop, ...]  # depots... then the final server
    hop_index: int = 0  # which hop the receiver of this header is
    payload_length: int = STREAM_UNTIL_FIN
    digest: bool = True
    rebind: bool = False
    sync: bool = True
    #: Session-layer framing: payload arrives as (offset, length)
    #: frames, possibly over several parallel sublinks (Section VII).
    framed: bool = False
    resume_offset: int = 0
    #: Ask the server for the authoritative resume offset instead of
    #: asserting one (see FLAG_RESUME_QUERY).
    resume_query: bool = False
    #: Distributed-tracing context (see FLAG_TRACE); None when the
    #: session is untraced, in which case the encoding is byte-identical
    #: to the pre-trace wire format.
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.resume_query and not (self.rebind and self.sync):
            raise ProtocolError("resume_query requires rebind and sync")
        if len(self.session_id) != 16:
            raise ProtocolError(
                f"session id must be 16 bytes, got {len(self.session_id)}"
            )
        if not (1 <= len(self.route) <= MAX_HOPS):
            raise RouteError(
                f"route must have 1..{MAX_HOPS} hops, got {len(self.route)}"
            )
        if not (0 <= self.hop_index < len(self.route)):
            raise RouteError(
                f"hop index {self.hop_index} outside route of {len(self.route)}"
            )
        if self.payload_length < 0:
            raise ProtocolError("negative payload length")
        if self.resume_offset < 0:
            raise ProtocolError("negative resume offset")
        for hop in self.route:
            if not hop.host or len(hop.host.encode()) > 255:
                raise RouteError(f"bad hop host {hop.host!r}")
            if not (0 < hop.port < 65536):
                raise RouteError(f"bad hop port {hop.port}")

    # -- role helpers ----------------------------------------------------

    @property
    def short_id(self) -> str:
        """First 8 hex chars of the session id — the human-facing handle
        used in logs and telemetry span groups."""
        return self.session_id.hex()[:8]

    @property
    def is_last_hop(self) -> bool:
        """True when the receiver is the final server."""
        return self.hop_index == len(self.route) - 1

    @property
    def next_hop(self) -> RouteHop:
        """The hop a depot must forward to."""
        if self.is_last_hop:
            raise RouteError("final hop has no next hop")
        return self.route[self.hop_index + 1]

    def advanced(self) -> "LslHeader":
        """Header to send down the next sublink (hop index + 1).

        An attached trace context is forwarded verbatim: an untraced
        depot in the middle of a traced route keeps the upstream span
        as the parent, which is exactly the edge the collector should
        draw around an opaque hop.
        """
        return replace(self, hop_index=self.hop_index + 1)

    def with_trace(self, trace: Optional[TraceContext]) -> "LslHeader":
        """This header with ``trace`` attached (or detached)."""
        return replace(self, trace=trace)

    def traced_onward(self, parent_span: int) -> "LslHeader":
        """Advanced header naming this process's span as the parent.

        What a *traced* depot forwards instead of the plain
        :meth:`advanced` encoding: hop index + 1, same trace id, trace
        hop + 1, ``parent_span`` = the depot's own relay span.
        """
        if self.trace is None:
            raise ProtocolError("traced_onward on an untraced header")
        return replace(
            self,
            hop_index=self.hop_index + 1,
            trace=self.trace.child(parent_span),
        )

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        flags = (
            (FLAG_DIGEST if self.digest else 0)
            | (FLAG_REBIND if self.rebind else 0)
            | (FLAG_SYNC if self.sync else 0)
            | (FLAG_FRAMED if self.framed else 0)
            | (FLAG_RESUME_QUERY if self.resume_query else 0)
            | (FLAG_TRACE if self.trace is not None else 0)
        )
        parts = [
            _FIXED.pack(
                HEADER_MAGIC,
                HEADER_VERSION,
                flags,
                self.session_id,
                self.payload_length,
                self.resume_offset,
                self.hop_index,
                len(self.route),
            )
        ]
        for hop in self.route:
            encoded = hop.host.encode("utf-8")
            parts.append(struct.pack(">B", len(encoded)))
            parts.append(encoded)
            parts.append(struct.pack(">H", hop.port))
        if self.trace is not None:
            parts.append(
                _TRACE.pack(
                    self.trace.trace_id,
                    self.trace.parent_span,
                    self.trace.hop,
                )
            )
        return b"".join(parts)

    @property
    def encoded_length(self) -> int:
        return len(self.encode())

    @classmethod
    def decode(cls, data: bytes) -> Tuple["LslHeader", int]:
        """Parse a header from the front of ``data``.

        Returns ``(header, bytes_consumed)``. Raises
        :class:`ProtocolError` on malformed input and
        :class:`IncompleteHeader` if more bytes are needed.
        """
        if len(data) < _FIXED.size:
            raise IncompleteHeader(_FIXED.size - len(data))
        (
            magic,
            version,
            flags,
            session_id,
            payload_length,
            resume_offset,
            hop_index,
            hop_count,
        ) = _FIXED.unpack_from(data, 0)
        if magic != HEADER_MAGIC:
            raise ProtocolError(f"bad magic {magic!r}")
        if version != HEADER_VERSION:
            raise ProtocolError(f"unsupported version {version}")
        if not (1 <= hop_count <= MAX_HOPS):
            raise ProtocolError(f"bad hop count {hop_count}")
        pos = _FIXED.size
        hops: List[RouteHop] = []
        for _ in range(hop_count):
            if len(data) < pos + 1:
                raise IncompleteHeader(1)
            (hlen,) = struct.unpack_from(">B", data, pos)
            pos += 1
            if len(data) < pos + hlen + 2:
                raise IncompleteHeader(pos + hlen + 2 - len(data))
            host = data[pos : pos + hlen].decode("utf-8")
            pos += hlen
            (port,) = struct.unpack_from(">H", data, pos)
            pos += 2
            hops.append(RouteHop(host, port))
        trace: Optional[TraceContext] = None
        if flags & FLAG_TRACE:
            if len(data) < pos + _TRACE.size:
                raise IncompleteHeader(pos + _TRACE.size - len(data))
            trace_id, parent_span, trace_hop = _TRACE.unpack_from(data, pos)
            pos += _TRACE.size
            trace = TraceContext(
                trace_id=trace_id, parent_span=parent_span, hop=trace_hop
            )
        header = cls(
            session_id=session_id,
            route=tuple(hops),
            hop_index=hop_index,
            payload_length=payload_length,
            digest=bool(flags & FLAG_DIGEST),
            rebind=bool(flags & FLAG_REBIND),
            sync=bool(flags & FLAG_SYNC),
            framed=bool(flags & FLAG_FRAMED),
            resume_offset=resume_offset,
            resume_query=bool(flags & FLAG_RESUME_QUERY),
            trace=trace,
        )
        return header, pos


class IncompleteHeader(Exception):
    """More stream bytes are required to finish parsing the header.

    ``missing`` is a lower bound on how many more bytes are needed.
    """

    def __init__(self, missing: int) -> None:
        super().__init__(f"need at least {missing} more bytes")
        self.missing = missing


class HeaderAccumulator:
    """Incremental header parser for a byte stream.

    Feed real stream bytes as they arrive; returns the parsed header
    (plus any surplus payload bytes) once complete. ``hint`` is a
    lower bound on the bytes still needed — drivers doing their own
    buffering can use it to size reads, though over-reading is safe
    (the excess lands in ``surplus``).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.header: Optional[LslHeader] = None
        self.surplus: bytes = b""
        self.hint: int = _FIXED.size

    def feed(self, data: bytes) -> Optional[LslHeader]:
        """Returns the header once fully parsed; None while incomplete."""
        if self.header is not None:
            raise ProtocolError("header already parsed")
        self._buf.extend(data)
        try:
            header, consumed = LslHeader.decode(bytes(self._buf))
        except IncompleteHeader as inc:
            self.hint = inc.missing
            return None
        self.header = header
        self.surplus = bytes(self._buf[consumed:])
        self.hint = 0
        del self._buf[:]
        return header
