"""Client-side establishment sequencing.

The wire exchange (§1, §5 of ``docs/PROTOCOL.md``):

1. client sends the encoded header as the first bytes of the stream;
2. with ``sync``, the server answers one ``SESSION_ACK`` byte through
   the cascade;
3. with ``resume_query`` (negotiated resume), the ack is followed by
   8 big-endian bytes of the server's contiguously-received count —
   the authoritative offset the client must resume from.

:class:`ClientHandshake` owns steps 2–3 as a feed-based machine: the
driver reads at most :attr:`bytes_needed` bytes from its transport and
feeds them in; once :attr:`established` the session may carry payload.
Both the simulator client and the blocking socket client drive this
same object, so the two stacks cannot disagree on the sequence.
"""

from __future__ import annotations

from typing import Optional

from repro.lsl.core.errors import ProtocolError
from repro.lsl.core.events import ProtocolObserver, emit
from repro.lsl.core.wire import SESSION_ACK, LslHeader

_OFFSET_LEN = 8


class ClientHandshake:
    """Sans-I/O client half of session establishment."""

    def __init__(
        self,
        header: LslHeader,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.header = header
        self._observer = observer
        self._awaiting_ack = header.sync
        self._awaiting_offset = header.resume_query
        self._offset_buf = bytearray()
        #: Offset granted by the server under ``resume_query``.
        self.granted_offset: Optional[int] = None
        self.failed: Optional[ProtocolError] = None
        if not header.sync:
            emit(self._observer, "handshake-established", header.short_id,
                 sync=False)

    # -- state ------------------------------------------------------------

    @property
    def established(self) -> bool:
        return (
            self.failed is None
            and not self._awaiting_ack
            and not self._awaiting_offset
        )

    @property
    def awaiting_ack(self) -> bool:
        return self._awaiting_ack

    @property
    def awaiting_offset(self) -> bool:
        """True until the negotiated resume offset has arrived (always
        False for sessions that did not ask for one)."""
        return self._awaiting_offset

    @property
    def bytes_needed(self) -> int:
        """Upper bound the driver should read before feeding again.

        Reading less is always safe; reading more would steal
        reverse-direction application bytes, so drivers must cap their
        transport reads at this value during establishment.
        """
        if self.failed is not None:
            return 0
        if self._awaiting_ack:
            return 1
        if self._awaiting_offset:
            return _OFFSET_LEN - len(self._offset_buf)
        return 0

    # -- driver API --------------------------------------------------------

    def initial_bytes(self) -> bytes:
        """What the client must transmit first: the encoded header."""
        return self.header.encode()

    def feed(self, data: bytes) -> bool:
        """Consume establishment bytes; True once established.

        Raises :class:`ProtocolError` (after recording it in
        :attr:`failed`) on a bad ack or over-feed — the driver should
        abort the sublink.
        """
        if self.failed is not None:
            raise self.failed
        pos = 0
        if self._awaiting_ack and pos < len(data):
            if data[pos : pos + 1] != SESSION_ACK:
                return self._fail(f"bad session ack {data[pos:pos+1]!r}")
            pos += 1
            self._awaiting_ack = False
        if self._awaiting_offset and pos < len(data):
            take = min(_OFFSET_LEN - len(self._offset_buf), len(data) - pos)
            self._offset_buf.extend(data[pos : pos + take])
            pos += take
            if len(self._offset_buf) == _OFFSET_LEN:
                self.granted_offset = int.from_bytes(bytes(self._offset_buf), "big")
                self._awaiting_offset = False
        if pos < len(data):
            # feeding past establishment would swallow application bytes
            return self._fail(f"{len(data) - pos} bytes past handshake")
        if self.established:
            emit(
                self._observer,
                "handshake-established",
                self.header.short_id,
                sync=self.header.sync,
                granted_offset=self.granted_offset,
            )
            return True
        return False

    def _fail(self, reason: str) -> bool:
        self.failed = ProtocolError(f"handshake: {reason}")
        raise self.failed
