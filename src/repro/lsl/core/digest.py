"""End-to-end stream digest.

The paper sends an MD5 over the complete stream between *end systems*
— depots never touch it, preserving the end-to-end integrity argument
while moving only flow control and buffering into the network.

Because the simulator supports *virtual* (length-only) payload, the
digest is defined over the **logical stream**: real byte runs are
hashed directly; each maximal virtual run contributes a marker
``b"\\x00VIRT"`` plus its length as 8 big-endian bytes. Run boundaries
(real↔virtual transitions) are positions in the stream, so both ends
compute identical digests regardless of how TCP segmented the data.
For all-real streams this reduces to plain ``md5(payload)`` — the
real-socket stack (:mod:`repro.sockets`) uses exactly that.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

from repro.lsl.core.chunks import ChunkLike

_VIRT_MARK = b"\x00VIRT"

DIGEST_LEN = 16


class StreamDigest:
    """Incremental MD5 over a mixed real/virtual stream."""

    __slots__ = ("_md5", "_virtual_run", "total_bytes")

    def __init__(self) -> None:
        self._md5 = hashlib.md5()
        self._virtual_run = 0
        self.total_bytes = 0

    def update(self, data: bytes) -> None:
        """Feed real stream bytes."""
        if not data:
            return
        self._flush_virtual()
        self._md5.update(data)
        self.total_bytes += len(data)

    def update_virtual(self, nbytes: int) -> None:
        """Feed ``nbytes`` of virtual stream content."""
        if nbytes < 0:
            raise ValueError(f"negative virtual length {nbytes}")
        self._virtual_run += nbytes
        self.total_bytes += nbytes

    def update_chunk(self, chunk: ChunkLike) -> None:
        if chunk.data is None:
            self.update_virtual(chunk.length)
        else:
            self.update(chunk.data)

    def update_chunks(self, chunks: Iterable[ChunkLike]) -> None:
        for chunk in chunks:
            self.update_chunk(chunk)

    def _flush_virtual(self) -> None:
        if self._virtual_run:
            self._md5.update(_VIRT_MARK)
            self._md5.update(struct.pack(">Q", self._virtual_run))
            self._virtual_run = 0

    def digest(self) -> bytes:
        """Finalize-safe digest of everything fed so far (16 bytes)."""
        clone = self._md5.copy()
        if self._virtual_run:
            clone.update(_VIRT_MARK)
            clone.update(struct.pack(">Q", self._virtual_run))
        return clone.digest()

    def hexdigest(self) -> str:
        return self.digest().hex()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StreamDigest bytes={self.total_bytes} {self.hexdigest()[:8]}...>"


def virtual_digest_factory(offset: int) -> StreamDigest:
    """Digest state for an all-virtual payload prefix of ``offset`` bytes.

    Virtual runs hash as (marker, length), so the prefix state is
    reproducible from the byte count alone — which is what makes
    negotiated resume possible without replaying data.
    """
    d = StreamDigest()
    d.update_virtual(offset)
    return d


def real_digest_factory(payload: bytes) -> "_RealPrefixFactory":
    """Digest-state factory for an all-real payload held by the client.

    Returns a callable ``f(offset) -> StreamDigest`` that rebuilds the
    running MD5 for the prefix ``payload[:offset]`` — the real-socket
    counterpart of :func:`virtual_digest_factory` for negotiated resume.
    """
    return _RealPrefixFactory(payload)


class _RealPrefixFactory:
    __slots__ = ("_payload",)

    def __init__(self, payload: bytes) -> None:
        self._payload = payload

    def __call__(self, offset: int) -> StreamDigest:
        d = StreamDigest()
        d.update(self._payload[:offset])
        return d
