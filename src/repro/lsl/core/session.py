"""Session identity, server-side registry, and accept/resume decisions.

The 128-bit session id names the *conversation*, decoupled from any
particular transport connection — the property Section III of the
paper leans on for mobility ("the ultimate server need not know of an
address change") and that the rebind extension exercises: a sublink
can die and be replaced while the session handle stays valid.

:class:`SessionAcceptor` centralizes what a server must decide when a
parsed header arrives on a fresh sublink — fresh session, rebind of a
live one, restart of a half-established one, or rejection — and
:func:`negotiate_resume` / :func:`establishment_reply` pin down the
exact reply bytes (``SESSION_ACK`` [+ 8-byte granted offset]), so the
simulator server and the threaded socket server cannot drift.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.lsl.core.errors import (
    LslError,
    ProtocolError,
    RouteError,
    SessionUnknown,
)
from repro.lsl.core.events import ProtocolObserver, emit
from repro.lsl.core.wire import SESSION_ACK, LslHeader

SessionId = bytes  # 16 bytes


def new_session_id(rng: random.Random) -> SessionId:
    """Generate a fresh 128-bit session id from a seeded stream."""
    return rng.getrandbits(128).to_bytes(16, "big")


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with truncation and optional jitter.

    ``delay(k)`` is the wait before retry ``k`` (0-based):
    ``min(base_s * factor**k, max_s)``, scaled by a uniform
    ``1 ± jitter`` factor when an RNG is supplied, so a fleet of
    recovering clients does not stampede a restarted depot in sync.
    """

    base_s: float = 0.2
    factor: float = 2.0
    max_s: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.factor < 1.0 or self.max_s < self.base_s:
            raise ValueError("bad backoff parameters")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        d = min(self.base_s * self.factor ** max(attempt, 0), self.max_s)
        if rng is not None and self.jitter > 0.0:
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return d


@dataclass
class SessionRecord:
    """Server-side state that outlives individual transport sublinks."""

    session_id: SessionId
    created_at: float
    bytes_received: int = 0
    rebinds: int = 0
    #: Opaque per-application continuation state (e.g. the server
    #: connection object holding the running digest).
    attachment: object = None
    closed: bool = False
    #: Last moment the session showed signs of life (creation, rebind,
    #: suspend, completion) on the driver's clock. The TTL sweep
    #: (:meth:`SessionRegistry.expire`) measures idleness from here.
    last_active: float = 0.0


class SessionRegistry:
    """Tracks live sessions at a server (or depot) by session id."""

    def __init__(self) -> None:
        self._sessions: Dict[SessionId, SessionRecord] = {}

    def create(self, session_id: SessionId, now: float) -> SessionRecord:
        if session_id in self._sessions:
            raise ValueError(f"session {session_id.hex()} already exists")
        record = SessionRecord(
            session_id=session_id, created_at=now, last_active=now
        )
        self._sessions[session_id] = record
        return record

    def lookup(self, session_id: SessionId) -> SessionRecord:
        record = self._sessions.get(session_id)
        if record is None or record.closed:
            raise SessionUnknown(f"unknown session {session_id.hex()}")
        return record

    def get(self, session_id: SessionId) -> Optional[SessionRecord]:
        return self._sessions.get(session_id)

    def close(self, session_id: SessionId) -> None:
        record = self._sessions.get(session_id)
        if record is not None:
            record.closed = True

    def forget(self, session_id: SessionId) -> None:
        self._sessions.pop(session_id, None)

    def touch(self, session_id: SessionId, now: float) -> None:
        """Mark activity on a session (resets its idle clock)."""
        record = self._sessions.get(session_id)
        if record is not None:
            record.last_active = now

    def expire(self, now: float, ttl: float) -> List[SessionRecord]:
        """Drop sessions idle for longer than ``ttl``; returns the
        *open* records that were expired (suspended sessions that never
        rebound — the long-running ``lsd`` leak). Closed records past
        the TTL are garbage-collected silently: they were only kept to
        reject session-id reuse, and after a full TTL of silence the
        client has long since given up on the id.
        """
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        cutoff = now - ttl
        expired: List[SessionRecord] = []
        for session_id in [
            sid
            for sid, rec in self._sessions.items()
            if rec.last_active <= cutoff
        ]:
            record = self._sessions.pop(session_id)
            if not record.closed:
                expired.append(record)
        return expired

    @property
    def live_count(self) -> int:
        return sum(1 for r in self._sessions.values() if not r.closed)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: SessionId) -> bool:
        return session_id in self._sessions


# -- accept decisions ------------------------------------------------------


@dataclass(frozen=True)
class AcceptNew:
    """Fresh session: create state, send ``reply``, start receiving."""

    record: SessionRecord
    reply: bytes


@dataclass(frozen=True)
class RestartSession:
    """A fresh connect reused a live id whose ack was evidently lost:
    drop ``stale`` (abort its transport), then proceed as a new session."""

    record: SessionRecord
    reply: bytes
    stale: object


@dataclass(frozen=True)
class AcceptRebind:
    """Attach the sublink to the existing session in ``record``.

    The driver must validate/answer the resume handshake against its
    receiver state via :func:`negotiate_resume` (which yields the reply
    bytes), then continue the session on the new transport.
    """

    record: SessionRecord


@dataclass(frozen=True)
class RejectSession:
    """Refuse the sublink (abort/RST); ``error`` says why."""

    error: LslError


AcceptDecision = Union[AcceptNew, RestartSession, AcceptRebind, RejectSession]


def establishment_reply(
    header: LslHeader, granted_offset: Optional[int] = None
) -> bytes:
    """The exact bytes a server sends back after accepting ``header``.

    ``SESSION_ACK`` when the header asked for synchronous
    establishment, followed by the 8-byte granted offset for a
    negotiated resume; empty for async establishment.
    """
    if not header.sync:
        return b""
    if header.resume_query:
        if granted_offset is None:
            raise LslError("resume_query reply needs the granted offset")
        return SESSION_ACK + struct.pack(">Q", granted_offset)
    return SESSION_ACK


def negotiate_resume(
    header: LslHeader,
    bytes_received: int,
    observer: Optional[ProtocolObserver] = None,
) -> bytes:
    """Validate a rebind against receiver state; returns the reply bytes.

    With ``resume_query`` the server's contiguously-received count is
    authoritative and is granted back to the client; without it the
    client-asserted offset must match exactly, else the rebind is a
    protocol error and the sublink must be aborted.
    """
    if not header.rebind:
        raise LslError("negotiate_resume on a non-rebind header")
    if not header.resume_query and header.resume_offset != bytes_received:
        raise ProtocolError(
            f"rebind resume offset {header.resume_offset} != "
            f"received {bytes_received}"
        )
    if header.resume_query:
        emit(observer, "resume-granted", header.short_id,
             granted_offset=bytes_received)
        return establishment_reply(header, granted_offset=bytes_received)
    return establishment_reply(header)


class SessionAcceptor:
    """Server-side accept logic over a :class:`SessionRegistry`."""

    def __init__(
        self,
        registry: SessionRegistry,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.registry = registry
        self._observer = observer

    def decide(self, header: LslHeader, now: float) -> AcceptDecision:
        """Classify an inbound header; mutates the registry accordingly.

        ``now`` is the driver's clock (simulated or wall) — the core
        holds no clock of its own.
        """
        if not header.is_last_hop:
            err = RouteError("server addressed as intermediate hop")
            emit(self._observer, "session-rejected", header.short_id,
                 reason=str(err))
            return RejectSession(err)
        if header.rebind:
            try:
                record = self.registry.lookup(header.session_id)
            except SessionUnknown as exc:
                emit(self._observer, "session-rejected", header.short_id,
                     reason=str(exc))
                return RejectSession(exc)
            record.rebinds += 1
            record.last_active = now
            emit(self._observer, "session-rebound", header.short_id,
                 rebinds=record.rebinds, resume_query=header.resume_query)
            return AcceptRebind(record)
        existing = self.registry.get(header.session_id)
        if existing is not None:
            if existing.closed:
                err = ProtocolError("fresh connect reuses a closed session id")
                emit(self._observer, "session-rejected", header.short_id,
                     reason=str(err))
                return RejectSession(err)
            # our SESSION_ACK never reached the client and it restarted
            # the session from byte 0: drop the stale attachment and
            # accept the restart
            stale = existing.attachment
            self.registry.forget(header.session_id)
            record = self.registry.create(header.session_id, now)
            emit(self._observer, "session-restarted", header.short_id)
            return RestartSession(
                record, establishment_reply(header), stale
            )
        record = self.registry.create(header.session_id, now)
        emit(self._observer, "session-accepted", header.short_id,
             declared_length=header.payload_length, framed=header.framed)
        return AcceptNew(record, establishment_reply(header))
