"""The sans-I/O LSL protocol core.

One implementation of the Logistical Session Layer protocol — header
codec and handshake sequencing, session registry and resume
negotiation, depot relay decisions, framing and the end-to-end digest
trailer — expressed as pure state machines that **consume bytes or
chunks and return decisions**. Nothing in this package performs I/O,
schedules time, or imports the simulator kernel or the ``socket``
module; both the discrete-event stack (:mod:`repro.lsl`) and the
real-socket stack (:mod:`repro.sockets`) are thin drivers over these
machines (h11-style: one protocol core, many transports).

Driver contract (see ``docs/PROTOCOL.md`` §7 for the checklist):

- bytes in: drivers feed whatever the transport delivered
  (:class:`HeaderAccumulator`, :class:`ClientHandshake.feed`,
  :class:`PayloadReceiver.feed`, :class:`RelayCore.feed`);
- decisions out: machines return actions/events the driver maps onto
  its transport (send these bytes, dial this hop, deliver this chunk,
  the session completed/failed/suspended);
- the machines never call back into the driver except through the
  optional :data:`ProtocolObserver` hook, which exists solely for
  telemetry.
"""

from repro.lsl.core.chunks import Chunk, ChunkLike
from repro.lsl.core.errors import (
    DepotDown,
    DigestMismatch,
    FailoverExhausted,
    LslError,
    ProtocolError,
    RouteError,
    SessionUnknown,
)
from repro.lsl.core.wire import (
    FLAG_DIGEST,
    FLAG_FRAMED,
    FLAG_REBIND,
    FLAG_RESUME_QUERY,
    FLAG_SYNC,
    FLAG_TRACE,
    HEADER_MAGIC,
    HEADER_VERSION,
    MAX_HOPS,
    SESSION_ACK,
    STREAM_UNTIL_FIN,
    HeaderAccumulator,
    IncompleteHeader,
    LslHeader,
    RouteHop,
    TraceContext,
)
from repro.lsl.core.digest import (
    DIGEST_LEN,
    StreamDigest,
    real_digest_factory,
    virtual_digest_factory,
)
from repro.lsl.core.framing import (
    FRAME_HEADER_LEN,
    MAX_FRAME_PAYLOAD,
    FrameDecoder,
    encode_frame_header,
)
from repro.lsl.core.events import (
    CC_STATES,
    KNOWN_KINDS,
    ProtocolEvent,
    ProtocolObserver,
)
from repro.lsl.core.handshake import ClientHandshake
from repro.lsl.core.sender import PayloadSender
from repro.lsl.core.receiver import (
    EOF_CLOSE,
    EOF_COMPLETE,
    EOF_SUSPEND,
    Completed,
    Deliver,
    Failed,
    FramedReceiver,
    PayloadReceiver,
    ReceiverEvent,
)
from repro.lsl.core.session import (
    AcceptDecision,
    AcceptNew,
    AcceptRebind,
    BackoffPolicy,
    RejectSession,
    RestartSession,
    SessionAcceptor,
    SessionId,
    SessionRecord,
    SessionRegistry,
    establishment_reply,
    negotiate_resume,
    new_session_id,
)
from repro.lsl.core.relay import RelayCore, RelayForward, RelayReject
from repro.lsl.core.striping import (
    DEFAULT_STRIPE,
    PARITY_BASE,
    Assignment,
    Redundancy,
    StripeAssembler,
    StripeScheduler,
    parse_redundancy,
)

__all__ = [
    "Chunk",
    "ChunkLike",
    "LslError",
    "ProtocolError",
    "RouteError",
    "SessionUnknown",
    "DigestMismatch",
    "DepotDown",
    "FailoverExhausted",
    "HEADER_MAGIC",
    "HEADER_VERSION",
    "SESSION_ACK",
    "STREAM_UNTIL_FIN",
    "MAX_HOPS",
    "FLAG_DIGEST",
    "FLAG_REBIND",
    "FLAG_SYNC",
    "FLAG_FRAMED",
    "FLAG_RESUME_QUERY",
    "FLAG_TRACE",
    "LslHeader",
    "RouteHop",
    "TraceContext",
    "IncompleteHeader",
    "HeaderAccumulator",
    "StreamDigest",
    "DIGEST_LEN",
    "virtual_digest_factory",
    "real_digest_factory",
    "FrameDecoder",
    "encode_frame_header",
    "FRAME_HEADER_LEN",
    "MAX_FRAME_PAYLOAD",
    "ProtocolEvent",
    "ProtocolObserver",
    "KNOWN_KINDS",
    "CC_STATES",
    "ClientHandshake",
    "PayloadSender",
    "PayloadReceiver",
    "FramedReceiver",
    "ReceiverEvent",
    "Deliver",
    "Completed",
    "Failed",
    "EOF_COMPLETE",
    "EOF_SUSPEND",
    "EOF_CLOSE",
    "SessionId",
    "SessionRecord",
    "SessionRegistry",
    "SessionAcceptor",
    "AcceptDecision",
    "AcceptNew",
    "AcceptRebind",
    "RestartSession",
    "RejectSession",
    "BackoffPolicy",
    "new_session_id",
    "establishment_reply",
    "negotiate_resume",
    "RelayCore",
    "RelayForward",
    "RelayReject",
    "DEFAULT_STRIPE",
    "PARITY_BASE",
    "Assignment",
    "Redundancy",
    "StripeScheduler",
    "StripeAssembler",
    "parse_redundancy",
]
