"""Session-layer framing (the paper's Section VII future work).

Plain LSL relies on TCP's byte-stream ordering, so one session maps to
one chain of sublinks. *Framing* lifts that restriction: payload is
carried in self-describing frames ::

    0       8     offset (u64, big-endian) — position in the logical stream
    8       4     length (u32)             — payload bytes that follow

which makes the session independent of arrival order — the enabler for
parallel TCP striping (PSockets-style) and multi-path sessions, both
named in the paper as natural extensions of the session abstraction.

A frame whose ``offset`` equals the declared payload length is the
**trailer frame**: its payload is the 16-byte end-to-end MD5.

Frame headers are always real bytes; frame payload may be virtual.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable

from repro.lsl.core.chunks import Chunk, ChunkLike
from repro.lsl.core.errors import ProtocolError

_FRAME = struct.Struct(">QI")
FRAME_HEADER_LEN = _FRAME.size  # 12

#: Sanity cap: no single frame larger than this (catches corruption).
MAX_FRAME_PAYLOAD = 64 << 20


def encode_frame_header(offset: int, length: int) -> bytes:
    """Wire bytes announcing a frame of ``length`` at ``offset``."""
    if offset < 0 or length < 0:
        raise ValueError("negative frame fields")
    if length > MAX_FRAME_PAYLOAD:
        raise ValueError(f"frame too large: {length}")
    return _FRAME.pack(offset, length)


class FrameDecoder:
    """Incremental frame parser over a mixed real/virtual chunk stream.

    Feed the chunks a transport delivers; receive ``(offset, chunk)``
    pairs via the callback. Header bytes must be real; payload chunks
    pass through (split at frame boundaries), preserving real/virtual.
    """

    def __init__(self, on_payload: Callable[[int, Chunk], None]) -> None:
        self.on_payload = on_payload
        self._header_buf = bytearray()
        self._offset = 0  # current frame's logical offset
        self._remaining = 0  # payload bytes left in the current frame
        self.frames_seen = 0
        self.bytes_seen = 0

    def feed(self, chunks: Iterable[ChunkLike]) -> None:
        for chunk in chunks:
            self._feed_one(chunk)

    def feed_bytes(self, data: bytes) -> None:
        """Convenience for byte-stream drivers (real sockets)."""
        self._feed_one(Chunk.real(data))

    def _feed_one(self, chunk: ChunkLike) -> None:
        length, data = chunk.length, chunk.data
        pos = 0
        while pos < length:
            if self._remaining > 0:
                take = min(length - pos, self._remaining)
                piece = Chunk(
                    take, None if data is None else data[pos : pos + take]
                )
                self.on_payload(self._offset, piece)
                self._offset += take
                self._remaining -= take
                self.bytes_seen += take
                pos += take
                continue
            # expecting header bytes: must be real
            if data is None:
                raise ProtocolError("virtual bytes inside a frame header")
            need = FRAME_HEADER_LEN - len(self._header_buf)
            take = min(need, length - pos)
            self._header_buf.extend(data[pos : pos + take])
            pos += take
            if len(self._header_buf) == FRAME_HEADER_LEN:
                offset, flen = _FRAME.unpack(bytes(self._header_buf))
                if flen > MAX_FRAME_PAYLOAD:
                    raise ProtocolError(f"oversized frame: {flen}")
                self._header_buf.clear()
                self._offset = offset
                self._remaining = flen
                self.frames_seen += 1
                if flen == 0:
                    self.on_payload(offset, Chunk(0, b""))

    @property
    def mid_frame(self) -> bool:
        """True if a frame (header or payload) is partially consumed."""
        return self._remaining > 0 or bool(self._header_buf)
