"""Multipath striping: sans-I/O scheduler and reassembler.

Section VII names multi-path and parallel-stream generalization as the
point of session-layer framing. These machines carry that
generalization for *every* driver (simulator, threaded sockets,
asyncio): a :class:`StripeScheduler` on the sending side deals
fixed-size stripes of one logical payload across N sublinks, and a
:class:`StripeAssembler` on the receiving side reassembles them in
offset order, feeds the end-to-end MD5, and completes when coverage is
full and the trailer verifies.

Redundancy (RAIL-style) makes a lost path a *degradation* instead of a
resume round-trip:

- ``none``       — every stripe rides exactly one sublink; when a
                   sublink dies its uncovered stripes are re-dealt to
                   the survivors (the receiver discards duplicates);
- ``duplicate-k``— every stripe rides ``k+1`` *distinct* sublinks (and
                   so does the digest trailer), so a single path loss
                   leaves full coverage with nothing to re-deal;
- ``parity``     — every group of G stripes is followed by their XOR
                   block on a pseudo-offset, so the receiver can
                   reconstruct any one missing stripe per group without
                   waiting for a re-deal (real payload only).

Wire encoding: redundant copies are ordinary frames at their payload
offset — receivers discard duplicate byte ranges. Parity rides frames
at pseudo-offsets far above any real payload::

    offset == PARITY_BASE                      parity announce frame:
        16-byte descriptor (payload_length u64, stripe u32, group u32)
    offset == PARITY_BASE + (g+1) * (1 << 32)  XOR block of group g

Every sublink in a parity session sends the announce frame before any
payload, so the assembler knows to retain delivered blocks for
reconstruction before the first data byte arrives.

The machines hold no transport state: sublinks are opaque keys the
driver chooses (a socket, a task name, an index). ``migrate`` retires
one key and introduces another — the online re-planner's hook for
abandoning a path whose forecast flipped.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.lsl.core.chunks import Chunk, ChunkLike
from repro.lsl.core.digest import DIGEST_LEN, StreamDigest
from repro.lsl.core.errors import DigestMismatch, LslError, ProtocolError
from repro.lsl.core.events import ProtocolObserver, emit
from repro.lsl.core.framing import FrameDecoder, encode_frame_header
from repro.lsl.core.receiver import (
    Completed,
    Deliver,
    Failed,
    ReceiverEvent,
)

#: Default stripe size (the unit of dealing and of parity blocks).
DEFAULT_STRIPE = 128 * 1024

#: Frames at or above this offset are parity machinery, not payload.
#: Real payload offsets are bounded by MAX_FRAME_PAYLOAD-sized frames
#: well below this.
PARITY_BASE = 1 << 62
#: Pseudo-offset stride between parity groups.
PARITY_SPAN = 1 << 32

#: Parity announce descriptor: payload length, stripe bytes, group size.
_PARITY_DESC = struct.Struct(">QII")
PARITY_DESC_LEN = _PARITY_DESC.size  # 16


class Redundancy:
    """Parsed redundancy mode for a striped session."""

    __slots__ = ("mode", "copies", "group")

    def __init__(self, mode: str, copies: int = 0, group: int = 4) -> None:
        if mode not in ("none", "duplicate", "parity"):
            raise ValueError(f"unknown redundancy mode {mode!r}")
        if mode == "duplicate" and copies < 1:
            raise ValueError("duplicate redundancy needs copies >= 1")
        if mode == "parity" and group < 2:
            raise ValueError("parity groups need >= 2 stripes")
        self.mode = mode
        self.copies = copies
        self.group = group

    @property
    def spec(self) -> str:
        if self.mode == "duplicate":
            return f"duplicate-{self.copies}"
        if self.mode == "parity":
            return f"parity-{self.group}" if self.group != 4 else "parity"
        return "none"

    def __repr__(self) -> str:
        return f"Redundancy({self.spec!r})"


def parse_redundancy(spec: str) -> Redundancy:
    """Parse ``none | duplicate-K | parity[-G]`` into a :class:`Redundancy`."""
    s = spec.strip().lower()
    if s == "none":
        return Redundancy("none")
    if s.startswith("duplicate-"):
        try:
            k = int(s[len("duplicate-") :])
        except ValueError:
            raise ValueError(f"bad redundancy spec {spec!r}") from None
        return Redundancy("duplicate", copies=k)
    if s == "parity":
        return Redundancy("parity")
    if s.startswith("parity-"):
        try:
            g = int(s[len("parity-") :])
        except ValueError:
            raise ValueError(f"bad redundancy spec {spec!r}") from None
        return Redundancy("parity", group=g)
    raise ValueError(f"bad redundancy spec {spec!r}")


#: Assignment kinds.
KIND_DATA = "data"
KIND_PARITY = "parity"
KIND_ANNOUNCE = "announce"
KIND_TRAILER = "trailer"


class Assignment:
    """One frame's worth of work dealt to one sublink.

    The driver sends ``encode_frame_header(offset, length)`` followed
    by ``length`` payload bytes (``payload`` when real, virtual bytes
    when ``payload is None``), tracking its own progress in
    ``header_sent`` / ``sent``.
    """

    __slots__ = ("kind", "offset", "length", "payload", "header_sent", "sent")

    def __init__(
        self, kind: str, offset: int, length: int, payload: Optional[bytes]
    ) -> None:
        self.kind = kind
        self.offset = offset
        self.length = length
        self.payload = payload
        self.header_sent = False
        self.sent = 0

    @property
    def done(self) -> bool:
        return self.header_sent and self.sent >= self.length

    def frame_header(self) -> bytes:
        return encode_frame_header(self.offset, self.length)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Assignment {self.kind} @{self.offset} len={self.length} "
            f"sent={self.sent}>"
        )


class _Work:
    """One unit of transferable content and everywhere it was dealt."""

    __slots__ = ("kind", "offset", "length", "payload", "copies_left", "placements")

    def __init__(
        self,
        kind: str,
        offset: int,
        length: int,
        payload: Optional[bytes],
        copies: int,
    ) -> None:
        self.kind = kind
        self.offset = offset
        self.length = length
        self.payload = payload
        self.copies_left = copies
        self.placements: Dict[str, Assignment] = {}

    def assign(self, key: str) -> Assignment:
        a = Assignment(self.kind, self.offset, self.length, self.payload)
        self.placements[key] = a
        self.copies_left -= 1
        return a


class _SublinkState:
    __slots__ = ("key", "alive", "finished", "announce_pending")

    def __init__(self, key: str, announce: bool) -> None:
        self.key = key
        self.alive = True
        self.finished = False  # cleanly drained and FINned
        self.announce_pending = announce


class StripeScheduler:
    """Sans-I/O dealing side of a striped session.

    Driver contract, per sublink ``key``:

    - ``add_sublink(key)`` once the sublink's transport exists;
    - whenever the sublink can send, call ``next_assignment(key)`` and
      transmit the returned frame; ``None`` means the sublink will
      never carry more — send FIN and call ``sublink_finished(key)``;
    - on a transport error call ``sublink_lost(key, error)``: uncovered
      work is re-queued to the survivors and ``failed`` is set only
      when no survivor can complete coverage;
    - ``migrate(old, new)`` retires a path mid-transfer (re-planner).

    The digest is fed at stripe-creation time — stripes are created in
    logical order, so re-deals and redundant copies never touch it.
    """

    def __init__(
        self,
        payload_length: int,
        data: Optional[bytes] = None,
        stripe_bytes: int = DEFAULT_STRIPE,
        redundancy: Optional[Redundancy] = None,
        use_digest: bool = True,
        observer: Optional[ProtocolObserver] = None,
        session: str = "",
    ) -> None:
        if payload_length <= 0:
            raise LslError("striped sessions need a positive payload length")
        if data is not None and len(data) != payload_length:
            raise LslError("data length != payload_length")
        if stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")
        self.redundancy = redundancy if redundancy is not None else Redundancy("none")
        if self.redundancy.mode == "parity" and data is None:
            raise LslError("parity redundancy requires real payload bytes")
        self.payload_length = payload_length
        self.data = data
        self.stripe_bytes = stripe_bytes
        self.use_digest = use_digest
        self.digest = StreamDigest()
        self._observer = observer
        self._session = session

        self._next_offset = 0
        self._subs: Dict[str, _SublinkState] = {}
        #: Work with undealt copies, in dealing order.
        self._open: List[_Work] = []
        #: Every work record ever created (coverage accounting).
        self._records: List[_Work] = []
        self._trailer: Optional[_Work] = None
        self.failed: Optional[Exception] = None

        # parity accumulation for the group being dealt
        self._gxor = bytearray()
        self._gfirst_len = 0
        self._gcount = 0
        self._gindex = 0

        # counters (mirrored onto the event plane)
        self.redundant_stripes = 0
        self.redeals = 0
        self.migrations = 0

    # -- sublink lifecycle -------------------------------------------------

    def add_sublink(self, key: str) -> None:
        if key in self._subs:
            raise LslError(f"duplicate sublink key {key!r}")
        self._subs[key] = _SublinkState(
            key, announce=self.redundancy.mode == "parity"
        )

    def sublink_finished(self, key: str) -> None:
        """The driver drained this sublink and sent FIN."""
        state = self._subs[key]
        state.alive = False
        state.finished = True

    def sublink_lost(self, key: str, error: Optional[Exception] = None) -> None:
        """A sublink died; re-deal whatever only it was carrying."""
        state = self._subs[key]
        if not state.alive and not state.finished:
            return  # already accounted
        state.alive = False
        state.finished = False
        requeued = self._requeue_uncovered(key)
        if requeued:
            emit(
                self._observer,
                "stripe-redealt",
                self._session,
                sublink=key,
                stripes=requeued,
            )
        if not self._coverage_possible():
            self.failed = error if error is not None else LslError(
                "all sublinks lost with payload outstanding"
            )

    def migrate(self, old_key: str, new_key: str) -> None:
        """Abandon ``old_key`` (re-planner decision) in favour of
        ``new_key``; the old path's unique work moves to the pool."""
        self.migrations += 1
        emit(
            self._observer,
            "sublink-migrated",
            self._session,
            from_sublink=old_key,
            to_sublink=new_key,
        )
        self.add_sublink(new_key)
        state = self._subs[old_key]
        if state.alive:
            state.alive = False
            requeued = self._requeue_uncovered(old_key)
            if requeued:
                emit(
                    self._observer,
                    "stripe-redealt",
                    self._session,
                    sublink=old_key,
                    stripes=requeued,
                )

    @property
    def alive_sublinks(self) -> List[str]:
        return [k for k, s in self._subs.items() if s.alive]

    # -- dealing -----------------------------------------------------------

    def next_assignment(self, key: str) -> Optional[Assignment]:
        """The next frame ``key`` should carry; None when it is done."""
        if self.failed is not None:
            return None
        state = self._subs[key]
        if not state.alive:
            return None
        if state.announce_pending:
            state.announce_pending = False
            return Assignment(
                KIND_ANNOUNCE,
                PARITY_BASE,
                PARITY_DESC_LEN,
                _PARITY_DESC.pack(
                    self.payload_length, self.stripe_bytes, self.redundancy.group
                ),
            )
        # 1) open work (redundant copies, re-deals, parity blocks)
        for work in self._open:
            if work.copies_left > 0 and key not in work.placements:
                a = work.assign(key)
                self._compact_open()
                if self.redundancy.mode != "none" and len(work.placements) > 1:
                    self.redundant_stripes += 1
                    emit(
                        self._observer,
                        "stripe-redundant",
                        self._session,
                        work=work.kind,
                        offset=work.offset,
                        sublink=key,
                    )
                return a
        # 2) a fresh stripe off the frontier
        if self._next_offset < self.payload_length:
            return self._deal_fresh(key)
        # 3) the trailer (once per distinct sublink, up to its copies)
        trailer = self._trailer_work()
        if (
            trailer is not None
            and trailer.copies_left > 0
            and key not in trailer.placements
        ):
            a = trailer.assign(key)
            if len(trailer.placements) > 1:
                self.redundant_stripes += 1
                emit(
                    self._observer,
                    "stripe-redundant",
                    self._session,
                    work=KIND_TRAILER,
                    offset=trailer.offset,
                    sublink=key,
                )
            return a
        return None

    def _deal_fresh(self, key: str) -> Assignment:
        offset = self._next_offset
        length = min(self.stripe_bytes, self.payload_length - offset)
        self._next_offset += length
        payload: Optional[bytes] = None
        if self.data is None:
            self.digest.update_virtual(length)
        else:
            payload = self.data[offset : offset + length]
            self.digest.update(payload)
        copies = 1 + (
            self.redundancy.copies if self.redundancy.mode == "duplicate" else 0
        )
        work = _Work(KIND_DATA, offset, length, payload, copies)
        self._records.append(work)
        a = work.assign(key)
        if work.copies_left > 0:
            self._open.append(work)
        if self.redundancy.mode == "parity":
            assert payload is not None
            self._parity_accumulate(payload)
        return a

    def _parity_accumulate(self, block: bytes) -> None:
        if self._gcount == 0:
            self._gxor = bytearray(block)
            self._gfirst_len = len(block)
        else:
            for i, b in enumerate(block):
                self._gxor[i] ^= b
        self._gcount += 1
        group_full = self._gcount == self.redundancy.group
        frontier_done = self._next_offset >= self.payload_length
        if group_full or frontier_done:
            if self._gcount > 1:
                work = _Work(
                    KIND_PARITY,
                    PARITY_BASE + (self._gindex + 1) * PARITY_SPAN,
                    self._gfirst_len,
                    bytes(self._gxor[: self._gfirst_len]),
                    1,
                )
                self._records.append(work)
                self._open.append(work)
            # a single-stripe tail group has no one to XOR with: skip
            self._gindex += 1
            self._gcount = 0
            self._gxor = bytearray()

    def _trailer_work(self) -> Optional[_Work]:
        if not self.use_digest or self._next_offset < self.payload_length:
            return None
        if self._trailer is None:
            if self.redundancy.mode == "duplicate":
                copies = 1 + self.redundancy.copies
            elif self.redundancy.mode == "parity":
                copies = 2  # parity cannot protect the trailer: duplicate it
            else:
                copies = 1
            self._trailer = _Work(
                KIND_TRAILER,
                self.payload_length,
                DIGEST_LEN,
                self.digest.digest(),
                copies,
            )
            self._records.append(self._trailer)
        return self._trailer

    def _compact_open(self) -> None:
        if any(w.copies_left <= 0 for w in self._open):
            self._open = [w for w in self._open if w.copies_left > 0]

    # -- failure accounting ------------------------------------------------

    def _requeue_uncovered(self, key: str) -> int:
        """Re-queue every record only ``key`` was covering; returns the
        number of records re-queued."""
        requeued = 0
        for work in self._records:
            a = work.placements.pop(key, None)
            if a is None:
                continue
            if self._covered(work):
                continue
            work.copies_left += 1
            if work not in self._open:
                self._open.append(work)
            requeued += 1
            self.redeals += 1
        return requeued

    def _covered(self, work: _Work) -> bool:
        """True when some surviving or cleanly-finished sublink carries
        (or will finish carrying) this record."""
        for k in work.placements:
            s = self._subs.get(k)
            if s is not None and (s.alive or s.finished):
                return True
        return False

    def _coverage_possible(self) -> bool:
        alive = any(s.alive for s in self._subs.values())
        if alive:
            return True
        # no sublink left to deal to: coverage must already be complete
        if self._next_offset < self.payload_length:
            return False
        for work in self._records:
            if work.kind == KIND_PARITY:
                continue  # parity is an optimization, not coverage
            if not self._covered(work):
                return False
        if self.use_digest and self._trailer is None:
            return False
        return True

    # -- progress ----------------------------------------------------------

    @property
    def bytes_dealt(self) -> int:
        return self._next_offset

    @property
    def all_dealt(self) -> bool:
        """Every payload byte and the trailer have been dealt somewhere."""
        if self._next_offset < self.payload_length:
            return False
        if self.use_digest:
            t = self._trailer
            if t is None or not t.placements:
                return False
        return True


# ---------------------------------------------------------------------------
# receiving side
# ---------------------------------------------------------------------------


class _ParityGroup:
    """Accumulates one group's XOR block as its frame bytes arrive."""

    __slots__ = ("buf", "have", "done", "applied")

    def __init__(self, length: int) -> None:
        self.buf = bytearray(length)
        self.have = 0
        self.done = False
        self.applied = False


class StripeAssembler:
    """Sans-I/O reassembly side of a striped session.

    Drivers ``attach`` one opaque key per sublink and ``feed`` it
    whatever the transport delivered; the assembler decodes frames
    per-sublink, reassembles the logical stream in offset order behind
    a bounded out-of-order buffer, discards duplicate byte ranges
    (redundant copies, re-deals), collects the digest trailer (a
    duplicate trailer from a second sublink is discarded, not fatal),
    reconstructs a missing block from parity when possible, and
    returns the same :class:`Deliver` / :class:`Completed` /
    :class:`Failed` events as :class:`PayloadReceiver`.
    """

    def __init__(
        self,
        payload_length: int,
        use_digest: bool = True,
        observer: Optional[ProtocolObserver] = None,
        session: str = "",
    ) -> None:
        if payload_length <= 0:
            raise ProtocolError("striped sessions need a declared length")
        self.payload_length = payload_length
        self.use_digest = use_digest
        self._observer = observer
        self._session = session

        self.digest = StreamDigest()
        self.payload_received = 0  # in-order frontier
        self.digest_ok: Optional[bool] = None
        self.complete = False
        self.failed: Optional[Exception] = None

        self._decoders: Dict[str, FrameDecoder] = {}
        self._starts: List[int] = []  # sorted fragment start offsets
        self._frags: Dict[int, Chunk] = {}
        self.ooo_bytes = 0

        self._trailer = bytearray(DIGEST_LEN)
        self._trailer_seen = [False] * DIGEST_LEN

        # parity state (armed by the announce frame)
        self._geometry: Optional[Tuple[int, int]] = None  # (stripe, group)
        self._announce = bytearray(PARITY_DESC_LEN)
        self._announce_seen = [False] * PARITY_DESC_LEN
        self._parity: Dict[int, _ParityGroup] = {}
        self._retained: Dict[int, bytearray] = {}
        self._groups_cleaned = 0

        self.duplicate_bytes = 0
        self.reconstructed_blocks = 0

        self._events: List[ReceiverEvent] = []

    # -- sublink lifecycle -------------------------------------------------

    def attach(self, key: str) -> None:
        if key in self._decoders:
            raise LslError(f"duplicate sublink key {key!r}")
        self._decoders[key] = FrameDecoder(self._on_frame)

    def sublink_closed(self, key: str) -> None:
        """The sublink ended (FIN or error). A torn frame on it is
        fine — redundancy or a re-deal covers the missing range."""
        self._decoders.pop(key, None)

    @property
    def finished(self) -> bool:
        return self.complete or self.failed is not None

    # -- ingestion ---------------------------------------------------------

    def feed(self, key: str, chunks: List[ChunkLike]) -> List[ReceiverEvent]:
        if self.finished:
            return []
        decoder = self._decoders[key]
        try:
            decoder.feed(chunks)
        except ProtocolError as exc:
            self._fail(exc)
        else:
            self._advance()
        events, self._events = self._events, []
        return events

    def feed_bytes(self, key: str, data: bytes) -> List[ReceiverEvent]:
        """Convenience for byte-stream drivers (real sockets)."""
        return self.feed(key, [Chunk.real(data)])

    # -- frame handling ----------------------------------------------------

    def _on_frame(self, offset: int, chunk: Chunk) -> None:
        if self.finished:
            return
        if offset >= PARITY_BASE:
            self._parity_frame(offset - PARITY_BASE, chunk)
            return
        if offset >= self.payload_length:
            self._trailer_bytes(offset - self.payload_length, chunk)
            return
        if offset + chunk.length > self.payload_length:
            raise ProtocolError("frame crosses the payload boundary")
        if chunk.length == 0:
            return
        self._insert(offset, chunk)

    def _insert(self, offset: int, chunk: Chunk) -> None:
        """Store a payload range, discarding already-covered bytes."""
        start, end = offset, offset + chunk.length
        dropped = 0
        # clip the delivered prefix
        if start < self.payload_received:
            cut = min(end, self.payload_received) - start
            dropped += cut
            chunk = Chunk(
                chunk.length - cut,
                None if chunk.data is None else chunk.data[cut:],
            )
            start += cut
        # walk existing fragments overlapping [start, end)
        while start < end:
            i = bisect_right(self._starts, start) - 1
            if i >= 0:
                fstart = self._starts[i]
                fend = fstart + self._frags[fstart].length
                if start < fend:  # inside an existing fragment
                    cut = min(end, fend) - start
                    dropped += cut
                    chunk = Chunk(
                        chunk.length - cut,
                        None if chunk.data is None else chunk.data[cut:],
                    )
                    start += cut
                    continue
            j = bisect_left(self._starts, start)
            nstart = self._starts[j] if j < len(self._starts) else end
            take = min(end, nstart) - start
            if take > 0:
                piece = Chunk(
                    take,
                    None if chunk.data is None else chunk.data[:take],
                )
                chunk = Chunk(
                    chunk.length - take,
                    None if chunk.data is None else chunk.data[take:],
                )
                insort(self._starts, start)
                self._frags[start] = piece
                self.ooo_bytes += take
                start += take
        if dropped:
            self.duplicate_bytes += dropped
            emit(
                self._observer,
                "duplicate-discarded",
                self._session,
                nbytes=dropped,
                offset=offset,
            )

    def _trailer_bytes(self, pos: int, chunk: Chunk) -> None:
        if chunk.data is None:
            raise ProtocolError("virtual bytes in digest trailer")
        end = pos + chunk.length
        if end > DIGEST_LEN:
            raise ProtocolError("trailer overrun")
        dup = 0
        for i in range(pos, end):
            b = chunk.data[i - pos]
            if self._trailer_seen[i]:
                if self._trailer[i] != b:
                    raise ProtocolError("conflicting trailer bytes")
                dup += 1
            else:
                self._trailer[i] = b
                self._trailer_seen[i] = True
        if dup:
            self.duplicate_bytes += dup
            emit(
                self._observer,
                "duplicate-discarded",
                self._session,
                nbytes=dup,
                trailer=True,
            )

    # -- parity ------------------------------------------------------------

    def _parity_frame(self, rel: int, chunk: Chunk) -> None:
        if chunk.data is None:
            raise ProtocolError("virtual bytes in a parity frame")
        if rel < PARITY_SPAN:  # the announce frame
            self._announce_bytes(rel, chunk.data)
            return
        group = rel // PARITY_SPAN - 1
        pos = rel % PARITY_SPAN
        if self._geometry is None:
            raise ProtocolError("parity block before the announce frame")
        pg = self._parity.get(group)
        if pg is None:
            pg = _ParityGroup(self._parity_length(group))
            self._parity[group] = pg
        end = pos + chunk.length
        if end > len(pg.buf):
            raise ProtocolError("parity block overrun")
        if pg.done:
            self.duplicate_bytes += chunk.length
            emit(
                self._observer,
                "duplicate-discarded",
                self._session,
                nbytes=chunk.length,
                parity=True,
            )
            return
        pg.buf[pos:end] = chunk.data
        pg.have += chunk.length
        if pg.have >= len(pg.buf):
            pg.done = True

    def _announce_bytes(self, pos: int, data: bytes) -> None:
        end = pos + len(data)
        if end > PARITY_DESC_LEN:
            raise ProtocolError("parity announce overrun")
        for i in range(pos, end):
            b = data[i - pos]
            if self._announce_seen[i]:
                if self._announce[i] != b:
                    raise ProtocolError("conflicting parity announce")
            else:
                self._announce[i] = b
                self._announce_seen[i] = True
        if self._geometry is None and all(self._announce_seen):
            plen, stripe, group = _PARITY_DESC.unpack(bytes(self._announce))
            if plen != self.payload_length:
                raise ProtocolError("parity announce disagrees on length")
            if stripe <= 0 or group < 2:
                raise ProtocolError("bad parity geometry")
            self._geometry = (stripe, group)

    def _parity_length(self, group: int) -> int:
        """Length of group ``g``'s XOR block (its first block's size)."""
        assert self._geometry is not None
        stripe, gsize = self._geometry
        start = group * gsize * stripe
        if start >= self.payload_length:
            raise ProtocolError("parity group beyond payload")
        return min(stripe, self.payload_length - start)

    def _group_blocks(self, group: int) -> List[Tuple[int, int]]:
        assert self._geometry is not None
        stripe, gsize = self._geometry
        blocks: List[Tuple[int, int]] = []
        for i in range(gsize):
            start = (group * gsize + i) * stripe
            if start >= self.payload_length:
                break
            blocks.append((start, min(stripe, self.payload_length - start)))
        return blocks

    def _block_bytes(self, start: int, length: int) -> Optional[bytes]:
        """The block's bytes, from retained delivery and/or fragments;
        None when any part is missing (or was delivered virtually)."""
        out = bytearray()
        pos = start
        end = start + length
        if pos < self.payload_received:
            kept = self._retained.get(start)
            take = min(end, self.payload_received) - pos
            if kept is None or len(kept) < take:
                return None
            out += kept[:take]
            pos += take
        while pos < end:
            i = bisect_right(self._starts, pos) - 1
            if i < 0:
                return None
            fstart = self._starts[i]
            frag = self._frags[fstart]
            fend = fstart + frag.length
            if pos >= fend or frag.data is None:
                return None
            take = min(end, fend) - pos
            out += frag.data[pos - fstart : pos - fstart + take]
            pos += take
        return bytes(out)

    def _try_reconstruct(self) -> bool:
        """XOR-reconstruct a single missing block in any complete
        parity group; returns True when a block was inserted."""
        if self._geometry is None:
            return False
        for group, pg in self._parity.items():
            if not pg.done or pg.applied:
                continue
            blocks = self._group_blocks(group)
            missing: List[Tuple[int, int]] = []
            present: List[bytes] = []
            for start, length in blocks:
                got = None
                if self._range_covered(start, length):
                    got = self._block_bytes(start, length)
                if got is None:
                    missing.append((start, length))
                else:
                    present.append(got)
            if len(missing) != 1 or len(present) != len(blocks) - 1:
                continue
            mstart, mlen = missing[0]
            acc = bytearray(pg.buf)
            for blk in present:
                for i, b in enumerate(blk):
                    acc[i] ^= b
            pg.applied = True
            self.reconstructed_blocks += 1
            emit(
                self._observer,
                "stripe-reconstructed",
                self._session,
                offset=mstart,
                nbytes=mlen,
                group=group,
            )
            self._insert(mstart, Chunk.real(bytes(acc[:mlen])))
            return True
        return False

    def _range_covered(self, start: int, length: int) -> bool:
        """True when [start, start+length) is fully delivered or
        present in fragments (contiguously)."""
        pos = start
        end = start + length
        if pos < self.payload_received:
            pos = min(end, self.payload_received)
        while pos < end:
            i = bisect_right(self._starts, pos) - 1
            if i < 0:
                return False
            fstart = self._starts[i]
            fend = fstart + self._frags[fstart].length
            if pos >= fend:
                return False
            pos = min(end, fend)
        return True

    # -- frontier ----------------------------------------------------------

    def _advance(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._starts and self._starts[0] == self.payload_received:
                start = self._starts.pop(0)
                chunk = self._frags.pop(start)
                self.ooo_bytes -= chunk.length
                self._deliver(start, chunk)
                progressed = True
            if self._try_reconstruct():
                progressed = True
        self._cleanup_groups()
        self._maybe_complete()

    def _deliver(self, offset: int, chunk: Chunk) -> None:
        if self._geometry is not None and chunk.data is not None:
            self._retain(offset, chunk.data)
        self.digest.update_chunk(chunk)
        self.payload_received += chunk.length
        self._events.append(Deliver(chunk))

    def _retain(self, offset: int, data: bytes) -> None:
        assert self._geometry is not None
        stripe = self._geometry[0]
        pos = 0
        while pos < len(data):
            at = offset + pos
            bstart = (at // stripe) * stripe
            take = min(len(data) - pos, bstart + stripe - at)
            buf = self._retained.setdefault(bstart, bytearray())
            if at - bstart == len(buf):  # in-order delivery guarantees this
                buf += data[pos : pos + take]
            pos += take

    def _cleanup_groups(self) -> None:
        if self._geometry is None:
            return
        stripe, gsize = self._geometry
        span = stripe * gsize
        while True:
            g = self._groups_cleaned
            gend = min((g + 1) * span, self.payload_length)
            if g * span >= self.payload_length or gend > self.payload_received:
                break
            for start, _ in self._group_blocks(g):
                self._retained.pop(start, None)
            self._parity.pop(g, None)
            self._groups_cleaned += 1

    def _maybe_complete(self) -> None:
        if self.finished or self.payload_received < self.payload_length:
            return
        if self.use_digest:
            if not all(self._trailer_seen):
                return
            expected = bytes(self._trailer)
            actual = self.digest.digest()
            self.digest_ok = expected == actual
            if not self.digest_ok:
                emit(
                    self._observer,
                    "digest-mismatch",
                    self._session,
                    got=expected.hex()[:8],
                    want=actual.hex()[:8],
                )
                self._fail(
                    DigestMismatch(
                        f"session {self._session}: "
                        f"got {expected.hex()[:8]} want {actual.hex()[:8]}"
                    )
                )
                return
        self.complete = True
        emit(
            self._observer,
            "payload-complete",
            self._session,
            payload_received=self.payload_received,
            digest_ok=self.digest_ok,
        )
        self._events.append(Completed(self.digest_ok))

    def _fail(self, error: Exception) -> None:
        if self.failed is not None:
            return
        self.failed = error
        self._events.append(Failed(error))
