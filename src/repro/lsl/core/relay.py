"""Depot-side (``lsd``) protocol decisions.

A depot's protocol duties are small and easy to get subtly wrong (the
PR 2 bug sweep was mostly here): parse the header incrementally, check
it is *not* the final hop, advance the hop index, choose the next hop,
carry any payload that piggybacked with the header, and classify FIN
timing — a FIN before the header completes is a protocol error, while
a FIN after the header but before the relay exists (the dial window)
is legal and must be replayed to the pumps. :class:`RelayCore` owns
those decisions; the byte pumping itself stays with the drivers
(:class:`repro.lsl.relay.RelayPump` in the simulator, blocking copy
threads in the socket ``lsd``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.lsl.core.chunks import Chunk, ChunkLike
from repro.lsl.core.errors import LslError, ProtocolError, RouteError
from repro.lsl.core.events import ProtocolObserver, emit
from repro.lsl.core.wire import HeaderAccumulator, LslHeader, RouteHop


@dataclass(frozen=True)
class RelayForward:
    """Dial ``next_hop``, send ``onward_bytes`` (the advanced header),
    then replay ``surplus`` ahead of the relayed stream."""

    header: LslHeader
    next_hop: RouteHop
    onward_bytes: bytes
    surplus: Tuple[Chunk, ...]


@dataclass(frozen=True)
class RelayReject:
    """Refuse the sublink (abort upstream); ``error`` says why."""

    error: LslError


RelayDecision = Union[RelayForward, RelayReject]


class RelayCore:
    """Sans-I/O header phase of one depot session."""

    def __init__(self, observer: Optional[ProtocolObserver] = None) -> None:
        self._accumulator = HeaderAccumulator()
        self._observer = observer
        self.header: Optional[LslHeader] = None
        self.decided = False

    @property
    def header_complete(self) -> bool:
        return self.header is not None

    def feed(self, chunks: List[ChunkLike]) -> Optional[RelayDecision]:
        """Consume upstream chunks until the header resolves.

        Returns None while incomplete, then exactly one decision.
        Chunks past the header (and past a decision) come back inside
        :attr:`RelayForward.surplus` — payload the depot must forward
        after the advanced header.
        """
        if self.decided:
            raise ProtocolError("relay header phase already decided")
        surplus: List[Chunk] = []
        header = None
        for raw in chunks:
            if header is not None:
                surplus.append(Chunk(raw.length, raw.data))
                continue
            if raw.data is None:
                return self._reject(ProtocolError("virtual bytes before LSL header"))
            try:
                header = self._accumulator.feed(raw.data)
            except ProtocolError as exc:
                return self._reject(exc)
        if header is None:
            return None
        if header.is_last_hop:
            return self._reject(RouteError("depot addressed as final hop"))
        self.header = header
        self.decided = True
        if self._accumulator.surplus:
            surplus.insert(0, Chunk.real(self._accumulator.surplus))
        emit(self._observer, "relay-forward", header.short_id,
             hop_index=header.hop_index, next_hop=str(header.next_hop))
        return RelayForward(
            header=header,
            next_hop=header.next_hop,
            onward_bytes=header.advanced().encode(),
            surplus=tuple(surplus),
        )

    def on_upstream_fin(self) -> Optional[ProtocolError]:
        """Classify upstream FIN timing.

        Returns the error to fail the session with when the FIN landed
        before the header completed; None when it is legal (the header
        is parsed and EOF is now the pumps' business — including the
        dial window, where the driver must replay EOF to the pumps it
        is about to create).
        """
        if self.header is None:
            return ProtocolError("sublink closed before header complete")
        return None

    def _reject(self, error: LslError) -> RelayReject:
        self.decided = True
        emit(self._observer, "relay-rejected",
             self.header.short_id if self.header else "",
             reason=str(error))
        return RelayReject(error)
