"""Client-side payload accounting and trailer construction.

:class:`PayloadSender` owns the sending half of a session's framing
rules: payload bytes are counted against the declared length, the
running end-to-end MD5 tracks every byte, and ``finish`` yields the
16-byte digest trailer exactly when the protocol allows one. Drivers
ask :meth:`check_room` before writing and :meth:`record` after the
transport accepted bytes — how the bytes travel (simulator send
buffers, blocking ``sendall``) is not the sender's business.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.lsl.core.digest import StreamDigest
from repro.lsl.core.errors import LslError
from repro.lsl.core.wire import STREAM_UNTIL_FIN, LslHeader

DigestFactory = Callable[[int], StreamDigest]


class PayloadSender:
    """Sans-I/O sending side of one LSL session."""

    def __init__(
        self,
        header: LslHeader,
        digest_state: Optional[StreamDigest] = None,
        digest_factory: Optional[DigestFactory] = None,
    ) -> None:
        self.header = header
        self.digest = digest_state if digest_state is not None else StreamDigest()
        self._digest_factory = digest_factory
        self.bytes_sent = header.resume_offset
        self.finished = False

    # -- accounting --------------------------------------------------------

    @property
    def declared_length(self) -> Optional[int]:
        pl = self.header.payload_length
        return None if pl == STREAM_UNTIL_FIN else pl

    @property
    def remaining(self) -> Optional[int]:
        if self.declared_length is None:
            return None
        return self.declared_length - self.bytes_sent

    def check_room(self, nbytes: int) -> None:
        """Raise unless ``nbytes`` more payload bytes are legal now."""
        if self.finished:
            raise LslError("send after finish()")
        rem = self.remaining
        if rem is not None and nbytes > rem:
            raise LslError(
                f"payload overrun: {nbytes} bytes offered, {rem} remaining "
                f"of declared {self.declared_length}"
            )

    def record(self, data: bytes) -> None:
        """Account real payload bytes the transport accepted."""
        self.digest.update(data)
        self.bytes_sent += len(data)

    def record_virtual(self, nbytes: int) -> None:
        """Account virtual payload bytes the transport accepted."""
        self.digest.update_virtual(nbytes)
        self.bytes_sent += nbytes

    # -- negotiated resume -------------------------------------------------

    def rebase(self, offset: int) -> None:
        """Adopt the server's authoritative resume offset.

        Rebuilds the digest state for the logical prefix ``[0, offset)``
        via the ``digest_factory`` supplied at construction (required
        when the header carries a digest).
        """
        if self.header.digest:
            if self._digest_factory is None:
                raise LslError("resume rebase with digest needs digest_factory")
            self.digest = self._digest_factory(offset)
        self.bytes_sent = offset

    # -- completion --------------------------------------------------------

    def finish(self) -> bytes:
        """Declare the payload complete; returns the trailer to send.

        The trailer is the 16-byte MD5 when the header requested a
        digest, else ``b""`` — either way the driver must FIN the
        sublink after transmitting it. Idempotent: a second call
        returns ``b""``.
        """
        if self.finished:
            return b""
        rem = self.remaining
        if rem is not None and rem > 0:
            raise LslError(f"finish() with {rem} payload bytes undelivered")
        if self.header.digest and self.declared_length is None:
            raise LslError("digest requires a declared payload length")
        self.finished = True
        if not self.header.digest:
            return b""
        return self.digest.digest()
