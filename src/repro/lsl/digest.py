"""End-to-end stream digest (canonical home: :mod:`repro.lsl.core.digest`)."""

from __future__ import annotations

from repro.lsl.core.digest import (
    DIGEST_LEN,
    StreamDigest,
    real_digest_factory,
    virtual_digest_factory,
)

__all__ = [
    "DIGEST_LEN",
    "StreamDigest",
    "real_digest_factory",
    "virtual_digest_factory",
]
