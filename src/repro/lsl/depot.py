"""The depot daemon (the paper's ``lsd``).

An unprivileged user-level process that listens for LSL sublinks,
parses the session header, dials the next hop of the loose source
route, forwards the advanced header, and then "very simply establishes
a transport to transport binding" — two :class:`~repro.lsl.relay.RelayPump`
objects, one per direction, around a bounded relay buffer.

The header-phase decisions (parse, hop check, advance, surplus
carry-over, FIN-timing classification) live in
:class:`repro.lsl.core.RelayCore`; this module is the simulator driver
executing them with :class:`~repro.tcp.sockets.SimSocket` dials and
:class:`~repro.lsl.relay.RelayPump` byte pumping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lsl.core import RelayCore, RelayReject
from repro.lsl.errors import DepotDown, RouteError
from repro.lsl.header import LslHeader
from repro.lsl.relay import RelayPump
from repro.tcp.buffers import StreamChunk
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import SimSocket, TcpStack
from repro.tcp.trace import ConnectionTrace

#: Default relay buffer: "small, short-lived" per the paper. 256 KiB
#: comfortably covers the BDP of the faster sublink in every scenario.
DEFAULT_RELAY_BUFFER = 256 * 1024


@dataclass
class DepotStats:
    """Counters exposed by a depot."""

    sessions_accepted: int = 0
    sessions_completed: int = 0
    sessions_failed: int = 0
    sessions_aborted: int = 0
    sessions_refused: int = 0
    bytes_relayed_forward: int = 0
    bytes_relayed_reverse: int = 0
    crashes: int = 0


class _DepotSession:
    """Plumbing for one relayed session inside a depot."""

    def __init__(self, depot: "Depot", upstream: SimSocket) -> None:
        self.depot = depot
        self.upstream = upstream
        self.downstream: Optional[SimSocket] = None
        self.header: Optional[LslHeader] = None
        self._onward_bytes = b""
        # distributed tracing (wall/sim-clock TraceSpool; distinct from
        # the sim telemetry span below)
        self.relay_span = 0
        self.dial_span = 0
        self.forward_pump: Optional[RelayPump] = None
        self.reverse_pump: Optional[RelayPump] = None
        self._surplus_chunks: List[StreamChunk] = []
        self.done = False
        self.telemetry = depot.stack.net.telemetry
        self.span = None
        from repro.telemetry.protocol import protocol_observer

        self.relay = RelayCore(
            observer=protocol_observer(self.telemetry, "depot", lambda: self.span)
        )

        upstream.on_readable = self._on_header_bytes
        upstream.on_close = self._on_upstream_close
        upstream.on_peer_fin = self._on_early_fin
        # pull anything that raced ahead of the callback registration
        if upstream.readable_bytes > 0:
            self._on_header_bytes()

    # -- header phase ----------------------------------------------------

    def _on_header_bytes(self) -> None:
        if self.done or self.relay.decided:
            return  # payload accumulating while we dial; pumps drain it
        decision = self.relay.feed(self.upstream.recv())
        if decision is None:
            return
        if isinstance(decision, RelayReject):
            self._fail(decision.error)
            return
        header = decision.header
        self.header = header
        if self.telemetry.enabled:
            # joins the session's Perfetto process as the depot's lane
            self.span = self.telemetry.spans.begin(
                f"relay@{self.depot.host_name}",
                cat="lsl",
                group=header.short_id,
                args={"hop_index": header.hop_index},
            )
            if self.upstream.conn is not None:
                self.upstream.conn.telemetry_span = self.span
        self._onward_bytes = decision.onward_bytes
        tracer = self.depot.tracer
        if tracer is not None and header.trace is not None:
            tctx = header.trace
            self.relay_span = tracer.begin(
                "depot.relay",
                tctx.trace_id,
                tctx.parent_span,
                session=header.short_id,
                depot=self.depot.host_name,
                hop=tctx.hop,
            )
            # forward our relay span as the downstream parent instead of
            # the core's verbatim onward header
            self._onward_bytes = header.traced_onward(self.relay_span).encode()
        self._surplus_chunks = [
            StreamChunk(c.length, c.data) for c in decision.surplus
        ]
        # per-session setup (thread spawn, buffer allocation, resolving
        # the next hop) happens before the onward dial
        if self.depot.session_setup_delay_s > 0.0:
            self.depot.stack.net.sim.schedule(
                self.depot.session_setup_delay_s, self._dial_next_hop
            )
        else:
            self._dial_next_hop()

    def _on_early_fin(self) -> None:
        if self.done:
            return
        error = self.relay.on_upstream_fin()
        if error is not None:
            self._fail(error)
        # FIN after the header but before the pumps exist (the dial
        # window) is legal: RelayPump.__init__ replays the peer-FIN state
        # from the socket when it registers its callbacks.

    def _dial_next_hop(self) -> None:
        if self.done:
            return  # upstream died while the setup delay was pending
        header = self.header
        assert header is not None
        nxt = header.next_hop
        if self.relay_span and header.trace is not None:
            assert self.depot.tracer is not None
            self.dial_span = self.depot.tracer.begin(
                "depot.dial", header.trace.trace_id, self.relay_span,
                hop=f"{nxt.host}:{nxt.port}",
            )
        sock = self.depot.stack.socket(self.depot.tcp_options)
        self.downstream = sock
        trace = None
        if self.depot.trace_factory is not None:
            trace = self.depot.trace_factory(header, self.depot)
        sock.on_close = self._on_downstream_close
        sock.connect((nxt.host, nxt.port), on_connected=self._on_next_hop_up,
                     trace=trace)
        if self.span is not None and sock.conn is not None:
            sock.conn.telemetry_span = self.span
            # the depot's downstream conn is a *sender*: its congestion
            # state is what the diagnosis engine decomposes per sublink
            from repro.telemetry.protocol import protocol_observer

            cc_obs = protocol_observer(
                self.telemetry, "tcp-depot", lambda: self.span
            )
            if cc_obs is not None:
                sock.conn.attach_cc_observer(cc_obs, header.short_id)

    def _on_next_hop_up(self) -> None:
        downstream = self.downstream
        assert self.header is not None and downstream is not None
        if self.dial_span:
            assert self.depot.tracer is not None
            self.depot.tracer.end(self.dial_span)
            self.dial_span = 0
        downstream.send(self._onward_bytes)
        # surplus payload that arrived piggybacked with the header
        for chunk in self._surplus_chunks:
            if chunk.data is None:
                downstream.send_virtual(chunk.length)
            else:
                downstream.send(chunk.data)
        self._surplus_chunks = []
        self.forward_pump = RelayPump(
            self.depot.stack.net.sim,
            self.upstream,
            downstream,
            buffer_bytes=self.depot.relay_buffer_bytes,
            fixed_delay_s=self.depot.fixed_delay_s,
            per_byte_cost_s=self.depot.per_byte_cost_s,
            on_finished=self._on_forward_done,
        )
        self.reverse_pump = RelayPump(
            self.depot.stack.net.sim,
            downstream,
            self.upstream,
            buffer_bytes=self.depot.relay_buffer_bytes,
            fixed_delay_s=self.depot.fixed_delay_s,
            per_byte_cost_s=self.depot.per_byte_cost_s,
        )
        # data may already be waiting in the upstream receive buffer
        self.forward_pump.pull()

    # -- teardown ----------------------------------------------------------

    def _on_forward_done(self, error: Optional[Exception]) -> None:
        if error is not None:
            self._fail(error)

    def _on_upstream_close(self, error: Optional[Exception]) -> None:
        # _fail sets ``done`` before aborting the sockets, so the
        # reentrant close callbacks those aborts fire are no-ops and the
        # downstream abort cannot be mistaken for a clean completion
        if error is not None and not self.done:
            self._fail(error)

    def _on_downstream_close(self, error: Optional[Exception]) -> None:
        if self.done:
            return
        if error is not None:
            self._fail(error)
        else:
            self._complete()

    def _complete(self) -> None:
        if self.done:
            return
        self.done = True
        stats = self.depot.stats
        stats.sessions_completed += 1
        if self.forward_pump:
            stats.bytes_relayed_forward += self.forward_pump.bytes_relayed
        if self.reverse_pump:
            stats.bytes_relayed_reverse += self.reverse_pump.bytes_relayed
        self.depot._session_ended(self)

    def _fail(self, error: Exception, outcome: str = "session-failed") -> None:
        if self.done:
            return
        self.done = True
        if outcome == "session-aborted":
            self.depot.stats.sessions_aborted += 1
        else:
            self.depot.stats.sessions_failed += 1
        self.upstream.abort()
        if self.downstream is not None:
            self.downstream.abort()
        if self.forward_pump:
            self.forward_pump.abort(error)
        if self.reverse_pump:
            self.reverse_pump.abort(error)
        self.depot._session_ended(self, error, outcome)


class Depot:
    """An LSL depot: listen, parse header, dial next hop, relay.

    ``max_sessions`` enables the admission control Section VII-A
    sketches: beyond the limit new sublinks are refused (RST), so an
    overloaded depot sheds load instead of degrading every session.
    """

    def __init__(
        self,
        stack: TcpStack,
        port: int,
        relay_buffer_bytes: int = DEFAULT_RELAY_BUFFER,
        fixed_delay_s: float = 0.0,
        per_byte_cost_s: float = 0.0,
        session_setup_delay_s: float = 0.0,
        max_sessions: Optional[int] = None,
        tcp_options: Optional[TcpOptions] = None,
        trace_factory=None,
        tracer=None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.relay_buffer_bytes = relay_buffer_bytes
        self.fixed_delay_s = fixed_delay_s
        self.per_byte_cost_s = per_byte_cost_s
        self.session_setup_delay_s = session_setup_delay_s
        self.max_sessions = max_sessions
        self.tcp_options = tcp_options or stack.default_options
        #: Optional ``f(header, depot) -> ConnectionTrace`` used to trace
        #: the depot's outbound (downstream) sublinks for analysis.
        self.trace_factory = trace_factory
        #: Optional :class:`~repro.telemetry.tracing.TraceSpool` for
        #: distributed tracing (depot.relay / depot.dial spans).
        self.tracer = tracer
        self.stats = DepotStats()
        # dict-as-ordered-set: O(1) removal, deterministic iteration order
        self.active_sessions: Dict[_DepotSession, None] = {}
        self.crashed = False

        self._listener = stack.socket(self.tcp_options)
        self._listener.listen(port, self._on_accept)

    @property
    def host_name(self) -> str:
        return self.stack.host.name

    def _on_accept(self, sock: SimSocket) -> None:
        if (
            self.max_sessions is not None
            and len(self.active_sessions) >= self.max_sessions
        ):
            self.stats.sessions_refused += 1
            self.stack.net.logger.log(
                f"depot:{self.host_name}", "session-refused", self.max_sessions
            )
            sock.abort()
            return
        self.stats.sessions_accepted += 1
        self.active_sessions[_DepotSession(self, sock)] = None

    def _session_ended(
        self,
        session: _DepotSession,
        error: Optional[Exception] = None,
        outcome: Optional[str] = None,
    ) -> None:
        self.active_sessions.pop(session, None)
        if outcome is None:
            outcome = "session-failed" if error else "session-done"
        self.stack.net.logger.log(f"depot:{self.host_name}", outcome, error)
        if self.tracer is not None:
            if session.dial_span:
                self.tracer.end(session.dial_span, status="error")
                session.dial_span = 0
            if session.relay_span:
                self.tracer.end(
                    session.relay_span,
                    status="ok" if outcome == "session-done" else "error",
                )
                session.relay_span = 0
        if session.span is not None:
            relayed = (
                session.forward_pump.bytes_relayed
                if session.forward_pump is not None
                else 0
            )
            session.telemetry.spans.end(
                session.span,
                args={"outcome": outcome, "bytes_relayed": relayed},
            )
            session.span = None

    def shutdown(self) -> None:
        """Stop accepting; abort in-flight sessions."""
        self._listener.close_listener()
        for session in list(self.active_sessions):
            session._fail(
                RouteError("depot shutting down"), outcome="session-aborted"
            )

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop the listener and every in-flight session.

        New SYNs to the port elicit stack-level RSTs until
        :meth:`restart`; in-flight sublinks are aborted, so peers see a
        reset rather than a quiet hang.
        """
        if self.crashed:
            return
        self.crashed = True
        self.stats.crashes += 1
        self._listener.close_listener()
        for session in list(self.active_sessions):
            session._fail(
                DepotDown(f"depot {self.host_name} crashed"),
                outcome="session-aborted",
            )
        self.stack.net.logger.log(f"depot:{self.host_name}", "depot-crash", None)
        tel = self.stack.net.telemetry
        if tel.enabled:
            tel.metrics.counter("depot.crashes").inc()
            tel.flight_dump(
                "depot-crash",
                detail={"depot": self.host_name, "port": self.port},
            )

    def restart(self) -> None:
        """Bring a crashed depot back up (empty-handed: no session state)."""
        if not self.crashed:
            return
        self.crashed = False
        self._listener = self.stack.socket(self.tcp_options)
        self._listener.listen(self.port, self._on_accept)
        self.stack.net.logger.log(f"depot:{self.host_name}", "depot-restart", None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Depot {self.host_name}:{self.port} "
            f"active={len(self.active_sessions)}>"
        )
