"""Striped sessions: parallel and multi-path LSL (future work, built).

Section VII: "we believe that this abstraction is also useful for
other approaches such as multi-path performance optimizations and
parallel TCP streams. To facilitate this generalization ... we will
investigate session-layer framing." This module is that
generalization, built on :mod:`repro.lsl.framing`:

- :class:`StripedClient` opens one sublink per *route* (all carrying
  the same 128-bit session id, FLAG_FRAMED set), cuts the payload into
  fixed-size stripes, and deals stripes to whichever sublink has send
  space — so fast paths naturally carry more.
- :class:`StripedLslServer` accepts framed sublinks, groups them by
  session id, reassembles the logical stream in offset order (bounded
  buffer: a stalled path eventually backpressures the others), feeds
  the end-to-end MD5 in order, and completes when coverage is full and
  the trailer frame verifies.

Two classic configurations fall out for free:

- **parallel TCP (PSockets-style)**: N identical direct routes;
- **multi-path**: routes through *different* depots.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.lsl.client import HopLike, _normalize_route
from repro.lsl.digest import StreamDigest
from repro.lsl.errors import LslError, ProtocolError, RouteError
from repro.lsl.framing import FRAME_HEADER_LEN, FrameDecoder, encode_frame_header
from repro.lsl.header import LslHeader, RouteHop, STREAM_UNTIL_FIN
from repro.lsl.server import _PendingAccept
from repro.lsl.session import SessionId, SessionRegistry, new_session_id
from repro.tcp.buffers import ReceiveBuffer, StreamChunk
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import SimSocket, TcpStack

DIGEST_LEN = 16
DEFAULT_STRIPE = 128 * 1024


class _Stripe:
    """One unit of work: a contiguous payload range on one sublink."""

    __slots__ = ("offset", "length", "sent", "header_sent")

    def __init__(self, offset: int, length: int) -> None:
        self.offset = offset
        self.length = length
        self.sent = 0
        self.header_sent = False

    @property
    def done(self) -> bool:
        return self.header_sent and self.sent >= self.length


class _SublinkSender:
    """Client-side pump for one sublink of a striped session."""

    def __init__(self, client: "StripedClient", index: int, route) -> None:
        self.client = client
        self.index = index
        self.route = route
        self.current: Optional[_Stripe] = None
        self.trailer: Optional[bytes] = None  # pending trailer frame
        self.closed = False
        self.bytes_sent = 0

        header = LslHeader(
            session_id=client.session_id,
            route=route,
            hop_index=0,
            payload_length=client.payload_length,
            digest=client.use_digest,
            sync=False,  # framed joins are asynchronous by design
            framed=True,
        )
        self.header = header
        self.sock: SimSocket = client.stack.socket()
        self.sock.on_writable = self.pump
        self.sock.on_close = self._on_close
        first = route[0]
        self.sock.connect((first.host, first.port), on_connected=self._connected)

    def _connected(self) -> None:
        self.sock.send(self.header.encode())
        self.pump()

    # -- the stripe pump ----------------------------------------------------

    def pump(self) -> None:
        if self.closed or self.sock.conn is None:
            return
        progressed = True
        while progressed:
            progressed = False
            if self.current is None:
                # demand pacing: only take more work once this
                # sublink's TCP has drained its backlog, otherwise the
                # first-connected sublink swallows every stripe into
                # its send buffer and no striping happens
                conn = self.sock.conn
                if (
                    conn is not None
                    and conn.send_buffer.used >= self.client.inflight_limit
                ):
                    return
                self.current = self.client._next_stripe()
            stripe = self.current
            if stripe is not None:
                if not stripe.header_sent:
                    hdr = encode_frame_header(stripe.offset, stripe.length)
                    if self.sock.send_space < len(hdr):
                        return
                    self.sock.send(hdr)
                    stripe.header_sent = True
                    progressed = True
                if stripe.sent < stripe.length:
                    want = stripe.length - stripe.sent
                    data = self.client._payload_slice(
                        stripe.offset + stripe.sent, want
                    )
                    if data is None:
                        sent = self.sock.send_virtual(want)
                    else:
                        sent = self.sock.send(data)
                    if sent > 0:
                        stripe.sent += sent
                        self.bytes_sent += sent
                        progressed = True
                if stripe.done:
                    self.current = None
                    progressed = True
                else:
                    return  # out of send space
                continue
            # no stripes left: maybe the trailer rides this sublink
            if self.trailer is None and self.client._claim_trailer(self):
                digest = self.client.digest.digest()
                self.trailer = (
                    encode_frame_header(self.client.payload_length, DIGEST_LEN)
                    + digest
                )
            if self.trailer is not None:
                sent = self.sock.send(self.trailer)
                self.trailer = self.trailer[sent:]
                if self.trailer:
                    return
                self.trailer = None
                self.client._trailer_dispatched = True
            # everything this sublink will ever carry is queued: FIN
            self.closed = True
            self.sock.close()
            return

    def _on_close(self, error: Optional[Exception]) -> None:
        if error is not None:
            self.client._sublink_failed(self, error)


class StripedClient:
    """Send one payload over several routes at once."""

    def __init__(
        self,
        stack: TcpStack,
        routes: Sequence[Sequence[HopLike]],
        payload_length: int,
        data: Optional[bytes] = None,
        stripe_bytes: int = DEFAULT_STRIPE,
        inflight_limit: Optional[int] = None,
        digest: bool = True,
        session_id: Optional[SessionId] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        if not routes:
            raise RouteError("need at least one route")
        if payload_length <= 0:
            raise LslError("striped sessions need a positive payload length")
        if data is not None and len(data) != payload_length:
            raise LslError("data length != payload_length")
        if stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")
        self.stack = stack
        self.payload_length = payload_length
        self.data = data
        self.use_digest = digest
        self.on_error = on_error
        self.session_id = (
            session_id
            if session_id is not None
            else new_session_id(stack.net.rng.stream("lsl-session-ids"))
        )
        self.digest = StreamDigest()
        self._next_offset = 0
        self._stripe_bytes = stripe_bytes
        #: Per-sublink unsent backlog above which no new stripes are
        #: dealt to it (keeps dealing demand-paced).
        self.inflight_limit = (
            inflight_limit
            if inflight_limit is not None
            else max(2 * stripe_bytes, 64 * 1024)
        )
        self._trailer_owner: Optional[_SublinkSender] = None
        self._trailer_dispatched = not digest
        self._failed: Optional[Exception] = None

        self.sublinks = [
            _SublinkSender(self, i, _normalize_route(r))
            for i, r in enumerate(routes)
        ]

    # -- stripe dealing (called by sublink pumps) ---------------------------

    def _next_stripe(self) -> Optional[_Stripe]:
        if self._failed is not None:
            return None
        if self._next_offset >= self.payload_length:
            return None
        offset = self._next_offset
        length = min(self._stripe_bytes, self.payload_length - offset)
        self._next_offset += length
        # digest is fed at assignment time: stripes are dealt in
        # logical order, so the digest sees the stream in order
        if self.data is None:
            self.digest.update_virtual(length)
        else:
            self.digest.update(self.data[offset : offset + length])
        return _Stripe(offset, length)

    def _payload_slice(self, offset: int, length: int) -> Optional[bytes]:
        if self.data is None:
            return None
        return self.data[offset : offset + length]

    def _claim_trailer(self, sublink: _SublinkSender) -> bool:
        """The trailer rides exactly one sublink, once all payload has
        been dealt."""
        if not self.use_digest or self._trailer_dispatched:
            return False
        if self._next_offset < self.payload_length:
            return False
        if self._trailer_owner is None:
            self._trailer_owner = sublink
        return self._trailer_owner is sublink

    def _sublink_failed(self, sublink: _SublinkSender, error: Exception) -> None:
        if self._failed is not None:
            return
        self._failed = error
        for s in self.sublinks:
            if s is not sublink and not s.closed:
                s.closed = True
                s.sock.abort()
        if self.on_error:
            self.on_error(error)

    @property
    def bytes_dealt(self) -> int:
        return self._next_offset

    def per_sublink_bytes(self) -> List[int]:
        return [s.bytes_sent for s in self.sublinks]


class _FramedServerSession:
    """Server-side state for one striped session (many sublinks)."""

    def __init__(
        self, server: "StripedLslServer", header: LslHeader
    ) -> None:
        self.server = server
        self.header = header
        self.session_id = header.session_id
        if header.payload_length == STREAM_UNTIL_FIN:
            raise ProtocolError("framed sessions require a declared length")
        self.payload_length = header.payload_length
        self.reassembler = ReceiveBuffer(server.reassembly_capacity)
        self.digest = StreamDigest()
        self._trailer = bytearray()
        self.payload_received = 0  # in-order prefix fed to digest/app
        self.digest_ok: Optional[bool] = None
        self.complete = False
        self.failed: Optional[Exception] = None
        self.sublinks: List[SimSocket] = []
        self._decoders: Dict[int, FrameDecoder] = {}
        self._blocked: List[SimSocket] = []

        self.on_complete: Optional[Callable[["_FramedServerSession"], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None

    # -- sublink attachment ------------------------------------------------

    def attach(self, sock: SimSocket, surplus: List[StreamChunk]) -> None:
        index = len(self.sublinks)
        self.sublinks.append(sock)
        decoder = FrameDecoder(self._on_frame_payload)
        self._decoders[index] = decoder
        sock.on_readable = lambda: self._drain(index)
        sock.on_peer_fin = lambda: self._drain(index)
        if surplus:
            self._feed(index, surplus)
        if sock.readable_bytes:
            self._drain(index)

    def _drain(self, index: int) -> None:
        if self.complete or self.failed:
            return
        sock = self.sublinks[index]
        # bounded reassembly: a stalled prefix stops us consuming more
        if self.reassembler.ooo_bytes >= self.server.reassembly_capacity:
            if sock not in self._blocked:
                self._blocked.append(sock)
            return
        self._feed(index, sock.recv())

    def _feed(self, index: int, chunks: List[StreamChunk]) -> None:
        try:
            self._decoders[index].feed(chunks)
        except ProtocolError as exc:
            self._fail(exc)
            return
        self._advance()

    # -- frame handling ----------------------------------------------------------

    def _on_frame_payload(self, offset: int, chunk: StreamChunk) -> None:
        if offset >= self.payload_length:
            # trailer frame territory
            trailer_pos = offset - self.payload_length
            if chunk.data is None:
                self._fail(ProtocolError("virtual trailer bytes"))
                return
            end = trailer_pos + chunk.length
            if end > DIGEST_LEN:
                self._fail(ProtocolError("trailer overrun"))
                return
            if len(self._trailer) < end:
                self._trailer.extend(b"\x00" * (end - len(self._trailer)))
            self._trailer[trailer_pos:end] = chunk.data
            return
        if chunk.length == 0:
            return
        self.reassembler.segment_arrived(offset, chunk.length, chunk.data)

    def _advance(self) -> None:
        """Feed any newly in-order prefix to the digest, then check
        completion and unblock stalled sublinks."""
        chunks = self.reassembler.read()
        for chunk in chunks:
            self.digest.update_chunk(chunk)
            self.payload_received += chunk.length
        record = self.server.registry.get(self.session_id)
        if record is not None:
            record.bytes_received = self.payload_received
        if chunks and self._blocked:
            blocked, self._blocked = self._blocked, []
            for sock in blocked:
                idx = self.sublinks.index(sock)
                self._drain(idx)
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self.complete or self.failed:
            return
        if self.payload_received < self.payload_length:
            return
        if self.header.digest:
            if len(self._trailer) < DIGEST_LEN:
                return
            ok = bytes(self._trailer) == self.digest.digest()
            self.digest_ok = ok
            if not ok:
                from repro.lsl.errors import DigestMismatch

                self._fail(DigestMismatch(self.session_id.hex()[:8]))
                return
        self.complete = True
        self.server.registry.close(self.session_id)
        for sock in self.sublinks:
            if not sock.closed:
                sock.close()
        if self.on_complete:
            self.on_complete(self)

    def _fail(self, error: Exception) -> None:
        if self.failed is not None or self.complete:
            return
        self.failed = error
        self.server.registry.close(self.session_id)
        for sock in self.sublinks:
            sock.abort()
        if self.on_error:
            self.on_error(error)
        self.server.errors.append(error)


class StripedLslServer:
    """Accepts framed (striped/multi-path) LSL sessions."""

    def __init__(
        self,
        stack: TcpStack,
        port: int,
        on_session: Callable[[_FramedServerSession], None],
        reassembly_capacity: int = 8 * 1024 * 1024,
        tcp_options: Optional[TcpOptions] = None,
        registry: Optional[SessionRegistry] = None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_session = on_session
        self.reassembly_capacity = reassembly_capacity
        self.registry = registry if registry is not None else SessionRegistry()
        self.sessions: Dict[SessionId, _FramedServerSession] = {}
        self.errors: List[Exception] = []
        self._pending: List[_PendingAccept] = []

        self._listener = stack.socket(tcp_options or stack.default_options)
        self._listener.listen(port, self._on_accept)

    def net_logger_log(self, event: str, detail) -> None:
        self.stack.net.logger.log(
            f"striped-server:{self.stack.host.name}", event, detail
        )

    def _on_accept(self, sock: SimSocket) -> None:
        self._pending.append(_PendingAccept(self, sock))

    def _pending_failed(self, pending, error: Exception) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        self.errors.append(error)

    def _header_ready(
        self, pending, header: LslHeader, surplus: List[StreamChunk]
    ) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        sock = pending.sock
        if not header.is_last_hop:
            sock.abort()
            self.errors.append(RouteError("server addressed as intermediate hop"))
            return
        if not header.framed:
            sock.abort()
            self.errors.append(
                ProtocolError("unframed sublink on a striped server")
            )
            return
        session = self.sessions.get(header.session_id)
        if session is None:
            try:
                session = _FramedServerSession(self, header)
            except ProtocolError as exc:
                sock.abort()
                self.errors.append(exc)
                return
            self.sessions[header.session_id] = session
            self.registry.create(header.session_id, self.stack.net.sim.now)
            session.attach(sock, surplus)
            self.on_session(session)
        else:
            if session.payload_length != header.payload_length:
                sock.abort()
                self.errors.append(
                    ProtocolError("sublink disagrees on payload length")
                )
                return
            session.attach(sock, surplus)

    def shutdown(self) -> None:
        self._listener.close_listener()
