"""Striped sessions: parallel and multi-path LSL over SimSocket.

Section VII: "we believe that this abstraction is also useful for
other approaches such as multi-path performance optimizations and
parallel TCP streams. To facilitate this generalization ... we will
investigate session-layer framing." The protocol logic lives in the
sans-I/O machines of :mod:`repro.lsl.core.striping`; this module is
the simulator driver over them (the real-socket drivers are
:mod:`repro.sockets.striped` and :mod:`repro.asockets.striped`):

- :class:`StripedClient` opens one sublink per *route* (all carrying
  the same 128-bit session id, FLAG_FRAMED set) and pumps whatever the
  :class:`~repro.lsl.core.striping.StripeScheduler` deals it — so fast
  paths naturally carry more, redundant copies ride distinct paths,
  and a dead path degrades the session instead of aborting it;
- :class:`StripedLslServer` accepts framed sublinks, groups them by
  session id, and feeds a per-session
  :class:`~repro.lsl.core.striping.StripeAssembler` (bounded
  reassembly buffer: a stalled path eventually backpressures the
  others; duplicate stripes and duplicate trailers are discarded).

Two classic configurations fall out for free:

- **parallel TCP (PSockets-style)**: N identical direct routes;
- **multi-path**: routes through *different* depots.

``StripedClient.migrate`` abandons one sublink for a new route
mid-transfer — the hook the online re-planner
(:mod:`repro.logistics.replan`) uses when a forecast flips.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.lsl.client import HopLike, _normalize_route
from repro.lsl.core import (
    Completed,
    Deliver,
    Failed,
    LslHeader,
    ProtocolObserver,
    Redundancy,
    RouteHop,
    StripeAssembler,
    StripeScheduler,
    parse_redundancy,
)
from repro.lsl.core.striping import DEFAULT_STRIPE, KIND_DATA, Assignment
from repro.lsl.errors import LslError, ProtocolError, RouteError
from repro.lsl.header import STREAM_UNTIL_FIN
from repro.lsl.server import _PendingAccept
from repro.lsl.session import SessionId, SessionRegistry, new_session_id
from repro.tcp.buffers import StreamChunk
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import SimSocket, TcpStack

DIGEST_LEN = 16

__all__ = [
    "DEFAULT_STRIPE",
    "DIGEST_LEN",
    "StripedClient",
    "StripedLslServer",
]


class _SublinkSender:
    """Client-side pump for one sublink of a striped session."""

    def __init__(
        self, client: "StripedClient", key: str, route: Tuple[RouteHop, ...]
    ) -> None:
        self.client = client
        self.key = key
        self.route = route
        self.current: Optional[Assignment] = None
        self.closed = False
        self.bytes_sent = 0
        self._greeted = False  # LSL header sent (nothing may precede it)

        header = LslHeader(
            session_id=client.session_id,
            route=route,
            hop_index=0,
            payload_length=client.payload_length,
            digest=client.use_digest,
            sync=False,  # framed joins are asynchronous by design
            framed=True,
        )
        self.header = header
        self.sock: SimSocket = client.stack.socket()
        self.sock.on_writable = self.pump
        self.sock.on_close = self._on_close
        first = route[0]
        self.sock.connect((first.host, first.port), on_connected=self._connected)

    def _connected(self) -> None:
        self._greeted = True
        self.sock.send(self.header.encode())
        self.pump()

    # -- the stripe pump ----------------------------------------------------

    def pump(self) -> None:
        # `sock.conn` exists from the moment connect() is called, so a
        # pump while the handshake is still in flight (e.g. migrate()
        # nudging every live sublink) must not queue stripe frames
        # ahead of the LSL header
        if self.closed or not self._greeted or self.sock.conn is None:
            return
        while True:
            if self.current is None:
                # demand pacing: only take more work once this
                # sublink's TCP has drained its backlog, otherwise the
                # first-connected sublink swallows every stripe into
                # its send buffer and no striping happens
                conn = self.sock.conn
                if (
                    conn is not None
                    and conn.send_buffer.used >= self.client.inflight_limit
                ):
                    return
                self.current = self.client.scheduler.next_assignment(self.key)
                if self.current is None:
                    # everything this sublink will ever carry is queued
                    self.closed = True
                    self.client.scheduler.sublink_finished(self.key)
                    self.sock.close()
                    return
            a = self.current
            if not a.header_sent:
                hdr = a.frame_header()
                if self.sock.send_space < len(hdr):
                    return
                self.sock.send(hdr)
                a.header_sent = True
            if a.sent < a.length:
                if a.payload is None:
                    sent = self.sock.send_virtual(a.length - a.sent)
                else:
                    sent = self.sock.send(a.payload[a.sent :])
                if sent > 0:
                    a.sent += sent
                    if a.kind == KIND_DATA:
                        self.bytes_sent += sent
            if not a.done:
                return  # out of send space
            self.current = None

    def _on_close(self, error: Optional[Exception]) -> None:
        if error is not None and not self.closed:
            self.closed = True
            self.client._sublink_failed(self, error)


class StripedClient:
    """Send one payload over several routes at once."""

    def __init__(
        self,
        stack: TcpStack,
        routes: Sequence[Sequence[HopLike]],
        payload_length: int,
        data: Optional[bytes] = None,
        stripe_bytes: int = DEFAULT_STRIPE,
        inflight_limit: Optional[int] = None,
        digest: bool = True,
        session_id: Optional[SessionId] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
        redundancy: Union[str, Redundancy] = "none",
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        if not routes:
            raise RouteError("need at least one route")
        self.stack = stack
        self.payload_length = payload_length
        self.data = data
        self.use_digest = digest
        self.on_error = on_error
        self.session_id = (
            session_id
            if session_id is not None
            else new_session_id(stack.net.rng.stream("lsl-session-ids"))
        )
        if isinstance(redundancy, str):
            redundancy = parse_redundancy(redundancy)
        self.scheduler = StripeScheduler(
            payload_length,
            data=data,
            stripe_bytes=stripe_bytes,
            redundancy=redundancy,
            use_digest=digest,
            observer=observer,
            session=self.session_id.hex()[:8],
        )
        #: Per-sublink unsent backlog above which no new stripes are
        #: dealt to it (keeps dealing demand-paced).
        self.inflight_limit = (
            inflight_limit
            if inflight_limit is not None
            else max(2 * stripe_bytes, 64 * 1024)
        )
        self.failed: Optional[Exception] = None
        self.sublinks: List[_SublinkSender] = []
        for r in routes:
            self._open_sublink(_normalize_route(r))

    def _open_sublink(self, route: Tuple[RouteHop, ...]) -> _SublinkSender:
        key = f"sub{len(self.sublinks)}"
        self.scheduler.add_sublink(key)
        sender = _SublinkSender(self, key, route)
        self.sublinks.append(sender)
        return sender

    # -- failure and migration ----------------------------------------------

    def _sublink_failed(self, sublink: _SublinkSender, error: Exception) -> None:
        if self.failed is not None:
            return
        self.scheduler.sublink_lost(sublink.key, error)
        if self.scheduler.failed is not None:
            # nothing left to degrade onto: the session is dead
            self.failed = self.scheduler.failed
            for s in self.sublinks:
                if not s.closed:
                    s.closed = True
                    s.sock.abort()
            if self.on_error:
                self.on_error(self.failed)
            return
        # degrade: survivors pick up the re-dealt work
        for s in self.sublinks:
            if not s.closed:
                s.pump()

    def migrate(self, index: int, new_route: Sequence[HopLike]) -> _SublinkSender:
        """Abandon sublink ``index`` for ``new_route`` (re-planner hook).

        The old path's unsent and uncovered stripes move to the pool;
        a fresh sublink over ``new_route`` joins the session and starts
        pumping. Returns the new sublink.
        """
        old = self.sublinks[index]
        route = _normalize_route(new_route)
        key = f"sub{len(self.sublinks)}"
        self.scheduler.migrate(old.key, key)
        if not old.closed:
            old.closed = True
            old.sock.abort()
        sender = _SublinkSender(self, key, route)
        self.sublinks.append(sender)
        for s in self.sublinks:
            if not s.closed:
                s.pump()
        return sender

    # -- progress -----------------------------------------------------------

    @property
    def bytes_dealt(self) -> int:
        return self.scheduler.bytes_dealt

    def per_sublink_bytes(self) -> List[int]:
        return [s.bytes_sent for s in self.sublinks]


class _FramedServerSession:
    """Server-side state for one striped session (many sublinks)."""

    def __init__(self, server: "StripedLslServer", header: LslHeader) -> None:
        self.server = server
        self.header = header
        self.session_id = header.session_id
        if header.payload_length == STREAM_UNTIL_FIN:
            raise ProtocolError("framed sessions require a declared length")
        self.payload_length = header.payload_length
        self.assembler = StripeAssembler(
            header.payload_length,
            use_digest=header.digest,
            observer=server.observer,
            session=header.short_id,
        )
        self.sublinks: List[SimSocket] = []
        self._blocked: List[int] = []
        self._closed = False

        self.on_complete: Optional[Callable[["_FramedServerSession"], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None
        self.on_data: Optional[Callable[[StreamChunk], None]] = None

    # -- assembler proxies ---------------------------------------------------

    @property
    def payload_received(self) -> int:
        return self.assembler.payload_received

    @property
    def digest_ok(self) -> Optional[bool]:
        return self.assembler.digest_ok

    @property
    def complete(self) -> bool:
        return self.assembler.complete

    @property
    def failed(self) -> Optional[Exception]:
        return self.assembler.failed

    # -- sublink attachment ------------------------------------------------

    def attach(self, sock: SimSocket, surplus: List[StreamChunk]) -> None:
        index = len(self.sublinks)
        self.sublinks.append(sock)
        self.assembler.attach(str(index))
        sock.on_readable = lambda: self._drain(index)
        sock.on_peer_fin = lambda: self._drain(index)
        if surplus:
            self._feed(index, surplus)
        if sock.readable_bytes:
            self._drain(index)

    def _drain(self, index: int) -> None:
        if self.assembler.finished:
            return
        sock = self.sublinks[index]
        # bounded reassembly: a stalled prefix stops us consuming more
        if self.assembler.ooo_bytes >= self.server.reassembly_capacity:
            if index not in self._blocked:
                self._blocked.append(index)
            return
        self._feed(index, sock.recv())

    def _feed(self, index: int, chunks: List[StreamChunk]) -> None:
        events = self.assembler.feed(str(index), chunks)
        delivered = False
        for event in events:
            if isinstance(event, Deliver):
                delivered = True
                if self.on_data is not None:
                    self.on_data(
                        StreamChunk(event.chunk.length, event.chunk.data)
                    )
            elif isinstance(event, Completed):
                self._completed()
            elif isinstance(event, Failed):
                self._fail(event.error)
        if delivered and not self.assembler.finished:
            record = self.server.registry.get(self.session_id)
            if record is not None:
                record.bytes_received = self.assembler.payload_received
            if self._blocked:
                blocked, self._blocked = self._blocked, []
                for idx in blocked:
                    self._drain(idx)

    def _completed(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.server.registry.close(self.session_id)
        for sock in self.sublinks:
            if not sock.closed:
                sock.close()
        if self.on_complete:
            self.on_complete(self)

    def _fail(self, error: Exception) -> None:
        if self._closed:
            return
        self._closed = True
        self.server.registry.close(self.session_id)
        for sock in self.sublinks:
            sock.abort()
        if self.on_error:
            self.on_error(error)
        self.server.errors.append(error)


class StripedLslServer:
    """Accepts framed (striped/multi-path) LSL sessions."""

    def __init__(
        self,
        stack: TcpStack,
        port: int,
        on_session: Callable[[_FramedServerSession], None],
        reassembly_capacity: int = 8 * 1024 * 1024,
        tcp_options: Optional[TcpOptions] = None,
        registry: Optional[SessionRegistry] = None,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_session = on_session
        self.reassembly_capacity = reassembly_capacity
        self.registry = registry if registry is not None else SessionRegistry()
        self.observer = observer
        self.sessions: Dict[SessionId, _FramedServerSession] = {}
        self.errors: List[Exception] = []
        self._pending: List[_PendingAccept] = []

        self._listener = stack.socket(tcp_options or stack.default_options)
        self._listener.listen(port, self._on_accept)

    def _on_accept(self, sock: SimSocket) -> None:
        self._pending.append(_PendingAccept(self, sock))

    def _pending_failed(self, pending: _PendingAccept, error: Exception) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        self.errors.append(error)

    def _header_ready(
        self,
        pending: _PendingAccept,
        header: LslHeader,
        surplus: List[StreamChunk],
    ) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        sock = pending.sock
        if not header.is_last_hop:
            sock.abort()
            self.errors.append(RouteError("server addressed as intermediate hop"))
            return
        if not header.framed:
            sock.abort()
            self.errors.append(
                ProtocolError("unframed sublink on a striped server")
            )
            return
        session = self.sessions.get(header.session_id)
        if session is None:
            try:
                session = _FramedServerSession(self, header)
            except ProtocolError as exc:
                sock.abort()
                self.errors.append(exc)
                return
            self.sessions[header.session_id] = session
            self.registry.create(header.session_id, self.stack.net.sim.now)
            session.attach(sock, surplus)
            self.on_session(session)
        else:
            if session.payload_length != header.payload_length:
                sock.abort()
                self.errors.append(
                    ProtocolError("sublink disagrees on payload length")
                )
                return
            session.attach(sock, surplus)

    def shutdown(self) -> None:
        self._listener.close_listener()
