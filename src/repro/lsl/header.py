"""The LSL wire header (canonical home: :mod:`repro.lsl.core.wire`).

Kept as a re-export so long-standing ``repro.lsl.header`` imports keep
working; the codec, flags, and incremental parser live in the sans-I/O
core shared with the real-socket stack.
"""

from __future__ import annotations

from repro.lsl.core.wire import (
    FLAG_DIGEST,
    FLAG_FRAMED,
    FLAG_REBIND,
    FLAG_RESUME_QUERY,
    FLAG_SYNC,
    FLAG_TRACE,
    HEADER_MAGIC,
    HEADER_VERSION,
    MAX_HOPS,
    SESSION_ACK,
    STREAM_UNTIL_FIN,
    HeaderAccumulator,
    IncompleteHeader,
    LslHeader,
    RouteHop,
    TraceContext,
)

__all__ = [
    "HEADER_MAGIC",
    "HEADER_VERSION",
    "SESSION_ACK",
    "STREAM_UNTIL_FIN",
    "MAX_HOPS",
    "FLAG_DIGEST",
    "FLAG_REBIND",
    "FLAG_SYNC",
    "FLAG_FRAMED",
    "FLAG_RESUME_QUERY",
    "FLAG_TRACE",
    "LslHeader",
    "RouteHop",
    "TraceContext",
    "IncompleteHeader",
    "HeaderAccumulator",
]
