"""LSL server: accept sessions, verify end-to-end integrity.

The server is the final hop of the loose source route. The protocol
decisions — header accounting, trailer/digest verification, EOF
classification, accept/rebind/restart arbitration — live in the
sans-I/O core (:class:`repro.lsl.core.PayloadReceiver`,
:class:`repro.lsl.core.SessionAcceptor`); this module is the simulator
driver mapping those decisions onto
:class:`~repro.tcp.sockets.SimSocket` events. Sessions survive
transport rebinds: a new sublink carrying the REBIND flag re-attaches
to the existing session record.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.lsl.core import (
    AcceptRebind,
    Completed,
    Deliver,
    EOF_COMPLETE,
    EOF_SUSPEND,
    Failed,
    PayloadReceiver,
    RejectSession,
    RestartSession,
    SessionAcceptor,
    negotiate_resume,
)
from repro.lsl.digest import StreamDigest
from repro.lsl.errors import LslError, ProtocolError
from repro.lsl.header import HeaderAccumulator, LslHeader
from repro.lsl.session import SessionRegistry
from repro.tcp.buffers import StreamChunk
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import SimSocket, TcpStack

DIGEST_LEN = 16


class LslServerConnection:
    """Server endpoint of one LSL session (survives rebinds)."""

    def __init__(self, server: "LslServer", sock: SimSocket, header: LslHeader) -> None:
        self.server = server
        self.sock = sock

        self._app_queue: Deque[StreamChunk] = deque()
        self._app_bytes = 0

        self.telemetry = server.stack.net.telemetry
        self.span = None
        if self.telemetry.enabled:
            self.span = self.telemetry.spans.begin(
                f"server@{server.stack.host.name}",
                cat="lsl",
                group=header.short_id,
                args={"declared_length": header.payload_length},
            )
        # distributed tracing (TraceSpool; distinct from the sim-time
        # telemetry span above)
        self.trace_span = 0
        self._trace_id: Optional[bytes] = None
        self._begin_trace_span(header)
        from repro.telemetry.protocol import protocol_observer

        self.receiver = PayloadReceiver(
            header,
            observer=protocol_observer(self.telemetry, "server", lambda: self.span),
        )

        # application callbacks
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_complete: Optional[Callable[["LslServerConnection"], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None
        self.on_close: Optional[Callable[[Optional[Exception]], None]] = None

        self._wire(sock)

    # -- protocol state (delegated to the core receiver) -------------------

    @property
    def header(self) -> LslHeader:
        return self.receiver.header

    @property
    def digest(self) -> StreamDigest:
        return self.receiver.digest

    @property
    def payload_received(self) -> int:
        return self.receiver.payload_received

    @property
    def digest_ok(self) -> Optional[bool]:
        return self.receiver.digest_ok

    @property
    def complete(self) -> bool:
        return self.receiver.complete

    @property
    def failed(self) -> Optional[Exception]:
        return self.receiver.failed

    # -- transport (re)binding --------------------------------------------

    def _wire(self, sock: SimSocket) -> None:
        self.sock = sock
        sock.on_readable = self._sock_readable
        sock.on_peer_fin = self._sock_peer_fin
        sock.on_close = self._sock_closed
        if self.span is not None and sock.conn is not None:
            sock.conn.telemetry_span = self.span

    def _tel_end(self, outcome: str) -> None:
        if self.span is not None:
            self.telemetry.spans.end(
                self.span,
                args={
                    "outcome": outcome,
                    "payload_received": self.payload_received,
                },
            )
            self.span = None

    # -- distributed tracing ----------------------------------------------

    def _begin_trace_span(
        self, header: LslHeader, granted: Optional[int] = None
    ) -> None:
        """Open a ``server.session`` span for this sublink attachment
        (same semantics as the real-socket servers: a rebind closes the
        old span as ``rebound``, emits ``server.resume-grant``, and
        opens a fresh span under the new sublink's trace context)."""
        tracer = self.server.tracer
        if tracer is None or header.trace is None:
            return
        if self.trace_span:
            tracer.end(self.trace_span, status="rebound")
        tctx = header.trace
        self._trace_id = tctx.trace_id
        self.trace_span = tracer.begin(
            "server.session",
            tctx.trace_id,
            tctx.parent_span,
            session=header.short_id,
            rebind=header.rebind,
            hop=tctx.hop,
        )
        if granted is not None:
            tracer.instant(
                "server.resume-grant", tctx.trace_id, self.trace_span,
                granted=granted,
            )

    def _end_trace_span(self, status: str) -> None:
        tracer = self.server.tracer
        if tracer is None or not self.trace_span:
            return
        if status == "suspended" and self._trace_id is not None:
            tracer.instant(
                "server.suspend", self._trace_id, self.trace_span,
                bytes_received=self.payload_received,
            )
        tracer.end(
            self.trace_span, status=status,
            bytes_received=self.payload_received,
        )
        self.trace_span = 0

    def rebind_transport(self, sock: SimSocket, header: LslHeader) -> None:
        """Attach a replacement sublink to this session."""
        if self.complete:
            raise LslError("rebind of a completed session")
        # validates the asserted offset (or grants ours) before any
        # mutation, so a bad rebind leaves the session untouched
        reply = negotiate_resume(
            header, self.payload_received, self.receiver._observer
        )
        granted = self.payload_received
        old = self.sock
        if old is not None and not old.closed:
            old.abort()
        self.receiver.rebind(header)
        self._wire(sock)
        self._begin_trace_span(header, granted=granted)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("lsl.rebinds").inc()
            self.telemetry.spans.instant(
                "rebind",
                cat="lsl",
                parent=self.span,
                args={
                    "session": header.short_id,
                    "resume_query": header.resume_query,
                    "granted_offset": self.payload_received,
                },
            )
        if reply:
            sock.send(reply)
        # data may already be waiting on the new sublink
        if sock.readable_bytes > 0:
            self._sock_readable()

    # -- session-layer framing ------------------------------------------------

    @property
    def session_id(self) -> bytes:
        return self.receiver.session_id

    @property
    def declared_length(self) -> Optional[int]:
        return self.receiver.declared_length

    def _sock_readable(self) -> None:
        self._ingest_chunks(self.sock.recv())

    def _ingest_chunks(self, chunks: List[StreamChunk]) -> None:
        delivered = False
        app_queue = self._app_queue
        for event in self.receiver.feed(chunks):
            if type(event) is Deliver:  # events are exact, leaf types
                chunk = event.chunk
                app_queue.append(StreamChunk(chunk.length, chunk.data))
                self._app_bytes += chunk.length
                delivered = True
            elif type(event) is Completed:
                self._on_complete_event()
            elif type(event) is Failed:
                self._fail(event.error)
        if delivered:
            # one registry touch per batch: bytes_received is monotonic,
            # so only the post-batch value matters
            record = self.server.registry.get(self.session_id)
            if record is not None:
                record.bytes_received = self.payload_received
        if self._app_bytes > 0 and self.on_readable:
            self.on_readable()

    def _on_complete_event(self) -> None:
        self.server.registry.close(self.session_id)
        self._tel_end("complete")
        self._end_trace_span(
            "ok" if self.digest_ok in (None, True) else "digest-failed"
        )
        if self.on_complete:
            self.on_complete(self)

    def _sock_peer_fin(self) -> None:
        self._sock_readable()  # drain anything left
        if self.complete or self.failed:
            self.sock.close()
            return
        disposition = self.receiver.feed_eof()
        if disposition == EOF_COMPLETE:
            self._on_complete_event()
            self.sock.close()
        elif disposition == EOF_SUSPEND:
            # could be a mobility event: keep session state for a rebind
            self.server.net_logger_log("session-suspended", self.session_id.hex()[:8])
            self._end_trace_span("suspended")
        else:
            self.sock.close()

    def _sock_closed(self, error: Optional[Exception]) -> None:
        if error is not None and not self.complete and self.failed is None:
            # transport died: session remains available for rebind
            self.server.net_logger_log("sublink-error", str(error))
        if self.on_close:
            self.on_close(error)

    def _fail(self, error: Exception) -> None:
        self.server.registry.close(self.session_id)
        self._tel_end("failed")
        self._end_trace_span("error")
        if self.telemetry.enabled:
            self.telemetry.flight_dump(
                "server-session-failed",
                detail={
                    "session": self.session_id.hex()[:8],
                    "error": str(error),
                },
            )
        if self.on_error:
            self.on_error(error)
        else:
            self.sock.abort()

    # -- application API -----------------------------------------------------------

    def recv(self, max_bytes: Optional[int] = None) -> List[StreamChunk]:
        """Consume received payload (session-layer framed, trailer
        excluded)."""
        budget = self._app_bytes if max_bytes is None else max_bytes
        out: List[StreamChunk] = []
        while self._app_queue and budget > 0:
            chunk = self._app_queue[0]
            if chunk.length <= budget:
                out.append(chunk)
                budget -= chunk.length
                self._app_queue.popleft()
            else:
                out.append(
                    StreamChunk(
                        budget, None if chunk.data is None else chunk.data[:budget]
                    )
                )
                self._app_queue[0] = StreamChunk(
                    chunk.length - budget,
                    None if chunk.data is None else chunk.data[budget:],
                )
                budget = 0
        self._app_bytes -= sum(c.length for c in out)
        return out

    @property
    def readable_bytes(self) -> int:
        return self._app_bytes

    def send(self, data: bytes) -> int:
        """Reverse-direction (server to client) bytes."""
        return self.sock.send(data)

    def send_virtual(self, nbytes: int) -> int:
        return self.sock.send_virtual(nbytes)

    def close(self) -> None:
        self.sock.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LslServerConnection {self.session_id.hex()[:8]} "
            f"recv={self.payload_received} complete={self.complete}>"
        )


class _PendingAccept:
    """Reads the header off a freshly accepted sublink."""

    def __init__(self, server: "LslServer", sock: SimSocket) -> None:
        self.server = server
        self.sock = sock
        self._accumulator = HeaderAccumulator()
        sock.on_readable = self._on_bytes
        sock.on_peer_fin = self._on_fin
        if sock.readable_bytes > 0:
            self._on_bytes()

    def _on_bytes(self) -> None:
        chunks = self.sock.recv()
        header = None
        tail_index = len(chunks)
        for i, chunk in enumerate(chunks):
            if chunk.data is None:
                self.sock.abort()
                self.server._pending_failed(
                    self, ProtocolError("virtual bytes before LSL header")
                )
                return
            try:
                header = self._accumulator.feed(chunk.data)
            except ProtocolError as exc:
                self.sock.abort()
                self.server._pending_failed(self, exc)
                return
            if header is not None:
                tail_index = i + 1
                break
        if header is None:
            return
        surplus: List[StreamChunk] = []
        if self._accumulator.surplus:
            surplus.append(
                StreamChunk(len(self._accumulator.surplus), self._accumulator.surplus)
            )
        surplus.extend(chunks[tail_index:])
        self.server._header_ready(self, header, surplus)

    def _on_fin(self) -> None:
        self.sock.close()
        self.server._pending_failed(
            self, ProtocolError("sublink closed before header complete")
        )


class LslServer:
    """Accept LSL sessions on a port."""

    def __init__(
        self,
        stack: TcpStack,
        port: int,
        on_session: Callable[[LslServerConnection], None],
        tcp_options: Optional[TcpOptions] = None,
        registry: Optional[SessionRegistry] = None,
        tracer=None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_session = on_session
        #: Optional :class:`~repro.telemetry.tracing.TraceSpool` for
        #: distributed tracing (``server.session`` spans).
        self.tracer = tracer
        self.registry = registry if registry is not None else SessionRegistry()
        from repro.telemetry.protocol import protocol_observer

        self.acceptor = SessionAcceptor(
            self.registry,
            observer=protocol_observer(stack.net.telemetry, "server"),
        )
        self.sessions: List[LslServerConnection] = []
        self._pending: List[_PendingAccept] = []
        self.errors: List[Exception] = []

        self._listener = stack.socket(tcp_options or stack.default_options)
        self._listener.listen(port, self._on_accept)

    def net_logger_log(self, event: str, detail) -> None:
        self.stack.net.logger.log(f"lsl-server:{self.stack.host.name}", event, detail)

    def _on_accept(self, sock: SimSocket) -> None:
        self._pending.append(_PendingAccept(self, sock))

    def _pending_failed(self, pending: _PendingAccept, error: Exception) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        self.errors.append(error)
        self.net_logger_log("accept-failed", str(error))

    def _header_ready(
        self, pending: _PendingAccept, header: LslHeader, surplus: List[StreamChunk]
    ) -> None:
        if pending in self._pending:
            self._pending.remove(pending)
        sock = pending.sock
        decision = self.acceptor.decide(header, self.stack.net.sim.now)
        if isinstance(decision, RejectSession):
            sock.abort()
            self.errors.append(decision.error)
            return
        if isinstance(decision, AcceptRebind):
            conn: LslServerConnection = decision.record.attachment
            try:
                conn.rebind_transport(sock, header)
            except (LslError, ProtocolError) as exc:
                sock.abort()
                self.errors.append(exc)
                return
        else:  # AcceptNew | RestartSession
            if isinstance(decision, RestartSession):
                stale: Optional[LslServerConnection] = decision.stale
                if stale is not None and not stale.sock.closed:
                    stale.sock.abort()
                self.net_logger_log(
                    "session-restarted", header.session_id.hex()[:8]
                )
            conn = LslServerConnection(self, sock, header)
            decision.record.attachment = conn
            self.sessions.append(conn)
            if decision.reply:
                sock.send(decision.reply)
            self.on_session(conn)
        if surplus:
            # payload piggybacked in the same segments as the header
            conn._ingest_chunks(surplus)

    def shutdown(self) -> None:
        self._listener.close_listener()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LslServer {self.stack.host.name}:{self.port} sessions={len(self.sessions)}>"
