"""Disconnected-endpoint sessions: the store-and-forward depot.

Section III: "Conceptually, the ultimate sending and receiving ports
need not exist at the same time, enabling a wide range of
functionality." A :class:`StoreForwardDepot` realizes that: it spools
an entire inbound session (bounded), acknowledges the sender via
ordinary TCP semantics, and delivers to the next hop *whenever it
becomes reachable* — retrying with exponential backoff until a
retention deadline.

Deferred sessions must use ``sync=False`` (there is no one to ack
establishment end-to-end while the receiver is away) and a declared
payload length. The end-to-end MD5 still travels with the payload, so
the eventual receiver verifies integrity against the original sender's
digest — the depot remains untrusted with content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.lsl.core import RelayCore, RelayReject
from repro.lsl.depot import DepotStats
from repro.lsl.errors import ProtocolError
from repro.lsl.header import LslHeader
from repro.sim import Timer
from repro.tcp.buffers import StreamChunk
from repro.tcp.options import TcpOptions
from repro.tcp.sockets import SimSocket, TcpStack

#: Default cap on one spooled session (header surplus + payload + trailer).
DEFAULT_MAX_OBJECT = 64 << 20
#: Default retention after the upload completes.
DEFAULT_RETENTION_S = 3600.0
RETRY_INITIAL_S = 0.5
RETRY_MAX_S = 30.0


class _SpooledSession:
    """One deferred session: spool inbound, deliver outbound later."""

    def __init__(self, depot: "StoreForwardDepot", upstream: SimSocket) -> None:
        self.depot = depot
        self.upstream = upstream
        self.header: Optional[LslHeader] = None
        self._relay = RelayCore()
        self._onward_bytes = b""
        self.spool: List[StreamChunk] = []
        self.spooled_bytes = 0
        self.upload_complete = False
        self.delivered = False
        self.expired = False
        self._retry_delay = RETRY_INITIAL_S
        self._retry_timer = Timer(depot.stack.net.sim, self._attempt_delivery)
        self._expiry_timer = Timer(depot.stack.net.sim, self._expire)
        self.downstream: Optional[SimSocket] = None
        self._sent_from_spool = 0
        self._attempts = 0

        upstream.on_readable = self._on_upstream_data
        upstream.on_peer_fin = self._on_upload_done
        upstream.on_close = lambda err: None
        if upstream.readable_bytes:
            self._on_upstream_data()

    # -- inbound spooling -------------------------------------------------

    def _on_upstream_data(self) -> None:
        chunks = self.upstream.recv()
        if self.header is None:
            if self._relay.decided:
                return  # header phase already failed; upstream aborting
            decision = self._relay.feed(chunks)
            if decision is None:
                return
            if isinstance(decision, RelayReject):
                self._fail(decision.error)
                return
            header = decision.header
            if header.sync:
                self._fail(
                    ProtocolError("deferred sessions must use sync=False")
                )
                return
            if header.payload_length >= (1 << 62):
                self._fail(
                    ProtocolError("deferred sessions need a declared length")
                )
                return
            self.header = header
            self._onward_bytes = decision.onward_bytes
            chunks = [StreamChunk(c.length, c.data) for c in decision.surplus]
        for chunk in chunks:
            if not self._spool(chunk):
                return

    def _spool(self, chunk: StreamChunk) -> bool:
        if self.spooled_bytes + chunk.length > self.depot.max_object_bytes:
            self._fail(ProtocolError("spooled object exceeds depot limit"))
            return False
        self.spool.append(chunk)
        self.spooled_bytes += chunk.length
        return True

    def _on_upload_done(self) -> None:
        self._on_upstream_data()
        if self.header is None:
            self._fail(ProtocolError("upload ended before header complete"))
            return
        self.upload_complete = True
        self.upstream.close()
        self.depot.stats.sessions_accepted += 1
        self._expiry_timer.start(self.depot.retention_s)
        self._attempt_delivery()

    # -- outbound delivery -----------------------------------------------------

    def _attempt_delivery(self) -> None:
        if self.delivered or self.expired:
            return
        self._attempts += 1
        nxt = self.header.next_hop
        sock = self.depot.stack.socket(self.depot.tcp_options)
        self.downstream = sock
        self._sent_from_spool = 0
        sock.on_close = self._on_downstream_close
        sock.on_writable = self._push
        sock.connect((nxt.host, nxt.port), on_connected=self._on_connected)

    def _on_connected(self) -> None:
        self.downstream.send(self._onward_bytes)
        self._push()

    def _push(self) -> None:
        sock = self.downstream
        if sock is None or self.delivered or sock.conn is None:
            return
        # walk the spool from the resume point
        sent = 0
        for chunk in self.spool:
            if sent + chunk.length <= self._sent_from_spool:
                sent += chunk.length
                continue
            skip = max(0, self._sent_from_spool - sent)
            length = chunk.length - skip
            if chunk.data is None:
                accepted = sock.send_virtual(length)
            else:
                accepted = sock.send(chunk.data[skip:])
            self._sent_from_spool += accepted
            sent += chunk.length
            if accepted < length:
                return  # send buffer full; resume on_writable
        sock.close()  # whole spool queued: FIN

    def _on_downstream_close(self, error: Optional[Exception]) -> None:
        if self.delivered or self.expired:
            return
        if error is None and self._sent_from_spool >= self.spooled_bytes:
            self.delivered = True
            self._retry_timer.stop()
            self._expiry_timer.stop()
            self.depot.stats.sessions_completed += 1
            self.depot.stats.bytes_relayed_forward += self.spooled_bytes
            self.depot._session_finished(self)
            return
        # failed: back off and retry while within retention
        self.downstream = None
        self._retry_timer.restart(self._retry_delay)
        self._retry_delay = min(self._retry_delay * 2.0, RETRY_MAX_S)

    def _expire(self) -> None:
        if self.delivered:
            return
        self.expired = True
        self._retry_timer.stop()
        if self.downstream is not None:
            self.downstream.abort()
        self.depot.stats.sessions_failed += 1
        self.depot._session_finished(self)

    def _fail(self, error: Exception) -> None:
        self.upstream.abort()
        self.depot.stats.sessions_failed += 1
        self.depot.stack.net.logger.log(
            f"sfdepot:{self.depot.stack.host.name}", "spool-failed", str(error)
        )
        self.depot._session_finished(self)


class StoreForwardDepot:
    """A depot that spools whole sessions and delivers them later."""

    def __init__(
        self,
        stack: TcpStack,
        port: int,
        max_object_bytes: int = DEFAULT_MAX_OBJECT,
        retention_s: float = DEFAULT_RETENTION_S,
        tcp_options: Optional[TcpOptions] = None,
    ) -> None:
        if max_object_bytes <= 0:
            raise ValueError("max_object_bytes must be positive")
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self.stack = stack
        self.port = port
        self.max_object_bytes = max_object_bytes
        self.retention_s = retention_s
        self.tcp_options = tcp_options or stack.default_options
        self.stats = DepotStats()
        self.sessions: List[_SpooledSession] = []

        self._listener = stack.socket(self.tcp_options)
        self._listener.listen(port, self._on_accept)

    def _on_accept(self, sock: SimSocket) -> None:
        self.sessions.append(_SpooledSession(self, sock))

    def _session_finished(self, session: _SpooledSession) -> None:
        if session in self.sessions:
            self.sessions.remove(session)

    @property
    def pending_sessions(self) -> int:
        """Uploads finished, delivery not yet achieved."""
        return sum(
            1 for s in self.sessions if s.upload_complete and not s.delivered
        )

    @property
    def spooled_bytes_total(self) -> int:
        return sum(s.spooled_bytes for s in self.sessions)

    def shutdown(self) -> None:
        self._listener.close_listener()
        for s in list(self.sessions):
            s._expire()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StoreForwardDepot {self.stack.host.name}:{self.port} "
            f"pending={self.pending_sessions}>"
        )
