"""Session identity and registry (canonical home: :mod:`repro.lsl.core.session`)."""

from __future__ import annotations

from repro.lsl.core.session import (
    BackoffPolicy,
    SessionAcceptor,
    SessionId,
    SessionRecord,
    SessionRegistry,
    establishment_reply,
    negotiate_resume,
    new_session_id,
)

__all__ = [
    "SessionId",
    "new_session_id",
    "BackoffPolicy",
    "SessionRecord",
    "SessionRegistry",
    "SessionAcceptor",
    "establishment_reply",
    "negotiate_resume",
]
