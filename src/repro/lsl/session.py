"""Session identity and server-side session registry.

The 128-bit session id names the *conversation*, decoupled from any
particular transport connection — the property Section III of the
paper leans on for mobility ("the ultimate server need not know of an
address change") and that our rebind extension exercises: a sublink
can die and be replaced while the session handle stays valid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.lsl.errors import SessionUnknown

SessionId = bytes  # 16 bytes


def new_session_id(rng: random.Random) -> SessionId:
    """Generate a fresh 128-bit session id from a seeded stream."""
    return rng.getrandbits(128).to_bytes(16, "big")


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with truncation and optional jitter.

    ``delay(k)`` is the wait before retry ``k`` (0-based):
    ``min(base_s * factor**k, max_s)``, scaled by a uniform
    ``1 ± jitter`` factor when an RNG is supplied, so a fleet of
    recovering clients does not stampede a restarted depot in sync.
    """

    base_s: float = 0.2
    factor: float = 2.0
    max_s: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.factor < 1.0 or self.max_s < self.base_s:
            raise ValueError("bad backoff parameters")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        d = min(self.base_s * self.factor ** max(attempt, 0), self.max_s)
        if rng is not None and self.jitter > 0.0:
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return d


@dataclass
class SessionRecord:
    """Server-side state that outlives individual transport sublinks."""

    session_id: SessionId
    created_at: float
    bytes_received: int = 0
    rebinds: int = 0
    #: Opaque per-application continuation state (e.g. the server
    #: connection object holding the running digest).
    attachment: object = None
    closed: bool = False


class SessionRegistry:
    """Tracks live sessions at a server (or depot) by session id."""

    def __init__(self) -> None:
        self._sessions: Dict[SessionId, SessionRecord] = {}

    def create(self, session_id: SessionId, now: float) -> SessionRecord:
        if session_id in self._sessions:
            raise ValueError(f"session {session_id.hex()} already exists")
        record = SessionRecord(session_id=session_id, created_at=now)
        self._sessions[session_id] = record
        return record

    def lookup(self, session_id: SessionId) -> SessionRecord:
        record = self._sessions.get(session_id)
        if record is None or record.closed:
            raise SessionUnknown(f"unknown session {session_id.hex()}")
        return record

    def get(self, session_id: SessionId) -> Optional[SessionRecord]:
        return self._sessions.get(session_id)

    def close(self, session_id: SessionId) -> None:
        record = self._sessions.get(session_id)
        if record is not None:
            record.closed = True

    def forget(self, session_id: SessionId) -> None:
        self._sessions.pop(session_id, None)

    @property
    def live_count(self) -> int:
        return sum(1 for r in self._sessions.values() if not r.closed)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: SessionId) -> bool:
        return session_id in self._sessions
