"""LSL client: open a session over a loose source route.

The client dials the **first hop** of the route (a depot, or directly
the server for a route of length 1), transmits the LSL header as the
first bytes of the stream, and then treats the sublink exactly like a
socket. Everything past the first hop is the depots' business.

The protocol itself — handshake sequencing, payload accounting, the
digest trailer — lives in the sans-I/O core
(:class:`repro.lsl.core.ClientHandshake`,
:class:`repro.lsl.core.PayloadSender`); this module is the simulator
driver mapping core decisions onto :class:`~repro.tcp.sockets.SimSocket`
events.

Example
-------
::

    conn = lsl_connect(
        stack,
        route=[("denver-depot", 4000), ("uiuc", 5000)],
        payload_length=64 << 20,
    )
    conn.on_writable = pump          # fill as buffer space opens
    ...
    conn.finish()                    # sends the MD5 trailer + FIN
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.lsl.core import (
    ClientHandshake,
    PayloadSender,
    ProtocolError,
    StreamDigest,
    TraceContext,
    virtual_digest_factory,
)
from repro.lsl.errors import FailoverExhausted, LslError, RouteError
from repro.lsl.header import STREAM_UNTIL_FIN, LslHeader, RouteHop
from repro.lsl.session import BackoffPolicy, SessionId, new_session_id
from repro.tcp.buffers import StreamChunk
from repro.tcp.sockets import SimSocket, TcpStack
from repro.tcp.trace import ConnectionTrace

HopLike = Union[RouteHop, Tuple[str, int]]

__all__ = [
    "LslClientConnection",
    "lsl_connect",
    "lsl_rebind",
    "virtual_digest_factory",
    "FailoverTransfer",
    "HopLike",
]


def _normalize_route(route: Sequence[HopLike]) -> Tuple[RouteHop, ...]:
    if not route:
        raise RouteError("empty route")
    return tuple(RouteHop(h[0], h[1]) for h in route)


class LslClientConnection:
    """Client endpoint of an LSL session (simulator driver)."""

    def __init__(
        self,
        stack: TcpStack,
        header: LslHeader,
        on_connected: Optional[Callable[[], None]] = None,
        trace: Optional[ConnectionTrace] = None,
        digest_state: Optional[StreamDigest] = None,
        digest_factory: Optional[Callable[[int], StreamDigest]] = None,
        parent_span=None,
        tracer=None,
        trace_id: Optional[bytes] = None,
        trace_parent: int = 0,
    ) -> None:
        self.stack = stack
        # distributed tracing (wall-clock TraceSpool, distinct from the
        # sim-time telemetry spans below): same span topology as the
        # real-socket clients so trace parity holds across drivers
        self._tracer = tracer
        self._session_span = 0
        self._hs_span = 0
        self.trace_id: Optional[bytes] = trace_id
        if tracer is not None:
            if self.trace_id is None:
                from repro.telemetry.tracing import new_trace_id

                self.trace_id = new_trace_id(
                    stack.net.rng.stream("lsl-trace-ids")
                )
            self._session_span = tracer.begin(
                "client.session",
                self.trace_id,
                parent=trace_parent,
                session=header.short_id,
                route=[f"{h.host}:{h.port}" for h in header.route],
                rebind=header.rebind,
            )
            header = header.with_trace(
                TraceContext(self.trace_id, self._session_span, 0)
            )
        self.header = header
        self.sender = PayloadSender(header, digest_state, digest_factory)
        self.handshake = ClientHandshake(header)
        self._pending_trailer = b""
        self._user_on_connected = on_connected
        self.established = False

        # reverse-direction (server -> client) deliveries
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[Optional[Exception]], None]] = None

        self.sock: SimSocket = stack.socket()
        self.sock.on_readable = self._sock_readable
        self.sock.on_writable = self._sock_writable
        self.sock.on_close = self._sock_closed
        first = header.route[header.hop_index]
        self._dial_span = 0
        if self._tracer is not None:
            assert self.trace_id is not None
            self._dial_span = self._tracer.begin(
                "client.dial", self.trace_id, self._session_span,
                hop=f"{first.host}:{first.port}",
            )
        self.sock.connect(
            (first.host, first.port), on_connected=self._connected, trace=trace
        )
        # span: this sublink's lifetime, parenting any TCP recovery
        # epochs on the underlying connection. Grouped by session id so
        # client/depot/server lanes share one Perfetto process.
        self.telemetry = stack.net.telemetry
        self.span = None
        if self.telemetry.enabled:
            self.span = self.telemetry.spans.begin(
                f"sublink:{stack.host.name}->{first.host}",
                cat="lsl",
                parent=parent_span,
                group=None if parent_span is not None else header.short_id,
                new_track=parent_span is not None,
                args={
                    "session": header.short_id,
                    "rebind": header.rebind,
                    "resume_offset": header.resume_offset,
                },
            )
            if self.sock.conn is not None:
                self.sock.conn.telemetry_span = self.span
            from repro.telemetry.protocol import protocol_observer

            self.handshake._observer = protocol_observer(
                self.telemetry, "client", lambda: self.span
            )
            # the sender-side TCP conn reports congestion-state
            # transitions (cc-open at this same sim instant, so the
            # diagnosis engine's tiling matches the sublink span)
            cc_obs = protocol_observer(
                self.telemetry, "tcp-client", lambda: self.span
            )
            if cc_obs is not None and self.sock.conn is not None:
                self.sock.conn.attach_cc_observer(cc_obs, header.short_id)

    # -- connection events ------------------------------------------------

    def _connected(self) -> None:
        if self._tracer is not None:
            if self._dial_span:
                self._tracer.end(self._dial_span)
                self._dial_span = 0
            assert self.trace_id is not None
            self._hs_span = self._tracer.begin(
                "client.handshake", self.trace_id, self._session_span
            )
        self.sock.send(self.handshake.initial_bytes())
        if self.handshake.established:
            self._established()

    def _established(self) -> None:
        self.established = True
        if self._tracer is not None and self._hs_span:
            granted = self.handshake.granted_offset
            self._tracer.end(
                self._hs_span, granted=granted if granted is not None else -1
            )
            self._hs_span = 0
        if self._user_on_connected:
            self._user_on_connected()

    def _sock_readable(self) -> None:
        while not self.handshake.established:
            need = self.handshake.bytes_needed
            chunks = self.sock.recv(need)
            if not chunks:
                return
            for chunk in chunks:
                if chunk.data is None:
                    # ack/offset must travel as real bytes
                    self.sock.abort()
                    return
                try:
                    done = self.handshake.feed(chunk.data)
                except ProtocolError:
                    self.sock.abort()
                    return
                if done:
                    granted = self.handshake.granted_offset
                    if granted is not None:
                        self.sender.rebase(granted)
                    self._established()
            if self.sock.readable_bytes == 0:
                return
        if self.on_readable:
            self.on_readable()

    def _sock_writable(self) -> None:
        if self._pending_trailer:
            self._flush_trailer()
            return
        if self.handshake.awaiting_offset:
            return  # payload base unknown until the server grants an offset
        if self.on_writable:
            self.on_writable()

    def _end_trace(self, status: str, **attrs) -> None:
        """Close open trace spans; idempotent across close/error paths."""
        if self._tracer is None:
            return
        for span in (self._dial_span, self._hs_span):
            if span:
                self._tracer.end(span, status=status)
        self._dial_span = self._hs_span = 0
        if self._session_span:
            self._tracer.end(
                self._session_span, status=status,
                bytes=self.sender.bytes_sent, **attrs,
            )
            self._session_span = 0

    def _sock_closed(self, error: Optional[Exception]) -> None:
        self._end_trace(
            "ok" if error is None and self.trailer_delivered else (
                "error" if error is not None else "aborted"
            ),
        )
        if self.span is not None:
            self.telemetry.spans.end(
                self.span,
                args={
                    "bytes_sent": self.bytes_sent,
                    "error": str(error) if error is not None else None,
                },
            )
            self.span = None
        if self.on_close:
            self.on_close(error)

    # -- payload transmission ------------------------------------------------

    @property
    def session_id(self) -> SessionId:
        return self.header.session_id

    @property
    def digest(self) -> StreamDigest:
        """The running end-to-end MD5 (carried across rebinds)."""
        return self.sender.digest

    @property
    def bytes_sent(self) -> int:
        return self.sender.bytes_sent

    @property
    def granted_offset(self) -> Optional[int]:
        return self.handshake.granted_offset

    @property
    def declared_length(self) -> Optional[int]:
        return self.sender.declared_length

    @property
    def remaining(self) -> Optional[int]:
        return self.sender.remaining

    @property
    def send_space(self) -> int:
        return self.sock.send_space

    def send(self, data: bytes) -> int:
        """Queue payload bytes; returns how many were accepted."""
        self._check_payload_room(len(data))
        accepted = self.sock.send(data)
        if accepted:
            self.sender.record(data[:accepted])
        return accepted

    def send_virtual(self, nbytes: int) -> int:
        """Queue virtual payload; returns how many bytes were accepted."""
        self._check_payload_room(nbytes)
        accepted = self.sock.send_virtual(nbytes)
        if accepted:
            self.sender.record_virtual(accepted)
        return accepted

    def _check_payload_room(self, n: int) -> None:
        if self.handshake.awaiting_offset:
            raise LslError("send before the resume offset was granted")
        self.sender.check_room(n)

    def recv(self, max_bytes: Optional[int] = None) -> List[StreamChunk]:
        """Read reverse-direction (server to client) data."""
        return self.sock.recv(max_bytes)

    @property
    def readable_bytes(self) -> int:
        return self.sock.readable_bytes

    # -- completion --------------------------------------------------------------

    @property
    def trailer_delivered(self) -> bool:
        """True once finish() ran and the whole trailer left our buffer."""
        return self.sender.finished and not self._pending_trailer

    def finish(self) -> None:
        """Declare the payload complete: send the MD5 trailer (when the
        header requested one) and FIN the sublink."""
        if self.sender.finished:
            return
        trailer = self.sender.finish()
        if trailer:
            self._pending_trailer = trailer
            self._flush_trailer()
        else:
            self.sock.close()

    def _flush_trailer(self) -> None:
        """Queue the digest trailer, deferring on a full send buffer."""
        sent = self.sock.send(self._pending_trailer)
        self._pending_trailer = self._pending_trailer[sent:]
        if not self._pending_trailer:
            self.sock.close()

    def close(self) -> None:
        """Alias for :meth:`finish` when a digest is pending, else FIN."""
        if self.header.digest and not self.sender.finished:
            self.finish()
        else:
            self.sock.close()

    def abort(self) -> None:
        self.sock.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LslClientConnection {self.session_id.hex()[:8]} "
            f"sent={self.bytes_sent}>"
        )


def lsl_connect(
    stack: TcpStack,
    route: Sequence[HopLike],
    payload_length: Optional[int] = None,
    digest: bool = True,
    sync: bool = True,
    on_connected: Optional[Callable[[], None]] = None,
    session_id: Optional[SessionId] = None,
    trace: Optional[ConnectionTrace] = None,
    parent_span=None,
    tracer=None,
    trace_id: Optional[bytes] = None,
    trace_parent: int = 0,
) -> LslClientConnection:
    """Open an LSL session along ``route`` (last hop = server).

    ``payload_length`` declares the client-to-server payload size; it
    is required when ``digest`` is on (the MD5 trailer needs a framing
    boundary). A route of length 1 degenerates to a direct session —
    LSL header but no depots.

    With ``sync=True`` (the paper's connection-oriented mode)
    ``on_connected`` fires only after the server's SESSION_ACK has
    travelled back through the whole cascade — so the end-to-end
    connection cost of each additional depot is *paid*, which is why
    the paper's smallest transfers lose with LSL. ``sync=False`` fires
    it as soon as the first sublink is up (optimistic streaming).
    """
    hops = _normalize_route(route)
    if digest and payload_length is None:
        raise LslError("digest=True requires payload_length")
    if session_id is None:
        session_id = new_session_id(stack.net.rng.stream("lsl-session-ids"))
    header = LslHeader(
        session_id=session_id,
        route=hops,
        hop_index=0,
        payload_length=(
            STREAM_UNTIL_FIN if payload_length is None else payload_length
        ),
        digest=digest,
        sync=sync,
    )
    return LslClientConnection(
        stack, header, on_connected, trace, parent_span=parent_span,
        tracer=tracer, trace_id=trace_id, trace_parent=trace_parent,
    )


def lsl_rebind(
    stack: TcpStack,
    route: Sequence[HopLike],
    session_id: SessionId,
    resume_offset: int,
    payload_length: Optional[int] = None,
    digest: bool = True,
    sync: bool = True,
    digest_state: Optional[StreamDigest] = None,
    on_connected: Optional[Callable[[], None]] = None,
    trace: Optional[ConnectionTrace] = None,
    resume_query: bool = False,
    digest_factory: Optional[Callable[[int], StreamDigest]] = None,
    parent_span=None,
    tracer=None,
    trace_id: Optional[bytes] = None,
    trace_parent: int = 0,
) -> LslClientConnection:
    """Re-attach to an existing session over a (possibly different)
    route — the mobility case of Section III: transport connections may
    come and go without disrupting the session handle.

    ``digest_state`` carries the client's running MD5 across the
    transport change; required when ``digest`` is on and data was
    already sent.

    With ``resume_query=True`` the client does not assert an offset: the
    server replies SESSION_ACK + 8 bytes of its contiguously-received
    count, and ``on_connected`` fires once that is known (the failover
    path, where the client cannot know how much survived the old
    sublink). ``digest_factory(offset)`` must then rebuild the MD5 state
    for the logical stream prefix ``[0, offset)``.
    """
    hops = _normalize_route(route)
    if digest and payload_length is None:
        raise LslError("digest=True requires payload_length")
    if resume_query:
        if not sync:
            raise LslError("resume_query requires sync establishment")
        if digest and digest_factory is None:
            raise LslError("resume_query with digest needs digest_factory")
    elif digest and resume_offset > 0 and digest_state is None:
        raise LslError("rebind with digest needs the prior digest_state")
    header = LslHeader(
        session_id=session_id,
        route=hops,
        hop_index=0,
        payload_length=(
            STREAM_UNTIL_FIN if payload_length is None else payload_length
        ),
        digest=digest,
        sync=sync,
        rebind=True,
        resume_offset=0 if resume_query else resume_offset,
        resume_query=resume_query,
    )
    return LslClientConnection(
        stack,
        header,
        on_connected,
        trace,
        digest_state,
        digest_factory,
        parent_span=parent_span,
        tracer=tracer,
        trace_id=trace_id,
        trace_parent=trace_parent,
    )


class FailoverTransfer:
    """Drive one payload to completion across failures.

    Owns the whole client side of a resilient transfer: opens the
    session on the best-ranked route, pumps (virtual) payload, and on a
    sublink failure retries with exponential backoff — failing over to
    the next candidate route and resuming from the server's
    authoritative offset (negotiated resume, see ``resume_query``).

    ``routes`` is a ranked candidate list (e.g. from
    :meth:`repro.logistics.planner.DepotPlanner.rank_routes`): attempt
    *k* after a failure uses route ``k mod len(routes)``. The list is
    a *plan-time snapshot*; pass ``route_provider`` to have the ladder
    re-queried before every retry, so an attempt made minutes into a
    transfer uses the forecast as it is then, not as it was when the
    transfer started (a depot that died mid-transfer drops out of the
    fresh ranking instead of being retried round-robin forever).

    Terminal states: ``done`` (server confirmed or the sublink closed
    cleanly after the trailer) or ``failed`` (``max_attempts``
    exhausted). In simulation the server runs in-process, so the runner
    normally wires the server's ``on_complete`` to
    :meth:`mark_complete` — the application-level ack that stops
    recovery even when the final clean close was lost with a depot.
    """

    def __init__(
        self,
        stack: TcpStack,
        routes: Sequence[Sequence[HopLike]],
        nbytes: int,
        digest: bool = True,
        backoff: Optional[BackoffPolicy] = None,
        max_attempts: int = 10,
        session_id: Optional[SessionId] = None,
        on_done: Optional[Callable[[Optional[Exception]], None]] = None,
        trace_factory: Optional[Callable[[int, Tuple[RouteHop, ...]], ConnectionTrace]] = None,
        route_provider: Optional[
            Callable[[], Sequence[Sequence[HopLike]]]
        ] = None,
    ) -> None:
        if not routes:
            raise RouteError("no candidate routes")
        if nbytes < 0:
            raise ValueError("negative payload size")
        self.stack = stack
        self.routes = [_normalize_route(r) for r in routes]
        self.nbytes = nbytes
        self.digest_enabled = digest
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.max_attempts = max_attempts
        self.on_done = on_done
        self.trace_factory = trace_factory
        self.route_provider = route_provider
        self.replans = 0  # retries whose fresh ranking differed
        self._rng = stack.net.rng.stream("lsl-failover")
        if session_id is None:
            session_id = new_session_id(stack.net.rng.stream("lsl-session-ids"))
        self.session_id = session_id

        self.conn: Optional[LslClientConnection] = None
        self.attempts = 0  # sublinks opened (first connect included)
        self.failovers = 0  # route switches
        self.route_index = 0
        self.done = False
        self.failed: Optional[Exception] = None
        self._ever_established = False
        self._consecutive_failures = 0
        self._retry_event = None
        self.telemetry = stack.net.telemetry
        self.session_span = None
        self._attempt_span = None
        if self.telemetry.enabled:
            sid = self.session_id.hex()[:8]
            self.session_span = self.telemetry.spans.begin(
                f"session:{sid}",
                cat="lsl",
                group=sid,
                args={"nbytes": nbytes, "routes": len(self.routes)},
            )
        self._start()

    # -- attempt lifecycle -------------------------------------------------

    @property
    def current_route(self) -> Tuple[RouteHop, ...]:
        return self.routes[self.route_index % len(self.routes)]

    def _start(self) -> None:
        self._retry_event = None
        if self.done or self.failed is not None:
            return
        if self.route_provider is not None and self.attempts > 0:
            # retry, not first attempt: re-query the ladder so this
            # attempt runs on the current forecast, not the snapshot
            # taken when the transfer was planned
            fresh = [_normalize_route(r) for r in self.route_provider()]
            if fresh and fresh != self.routes:
                self.replans += 1
                self.routes = fresh
        self.attempts += 1
        route = self.current_route
        trace = None
        if self.trace_factory is not None:
            trace = self.trace_factory(self.attempts, route)
        if self.session_span is not None:
            self._attempt_span = self.telemetry.spans.begin(
                f"attempt-{self.attempts}",
                cat="lsl",
                parent=self.session_span,
                args={"route": [h.host for h in route]},
            )
        if self._ever_established:
            # the server has the session: rebind and ask where to resume
            conn = lsl_rebind(
                self.stack,
                route,
                session_id=self.session_id,
                resume_offset=0,
                payload_length=self.nbytes,
                digest=self.digest_enabled,
                resume_query=True,
                digest_factory=virtual_digest_factory,
                on_connected=self._on_established,
                trace=trace,
                parent_span=self._attempt_span,
            )
        else:
            conn = lsl_connect(
                self.stack,
                route,
                payload_length=self.nbytes,
                digest=self.digest_enabled,
                session_id=self.session_id,
                on_connected=self._on_established,
                trace=trace,
                parent_span=self._attempt_span,
            )
        self.conn = conn
        conn.on_writable = self._pump
        conn.on_close = self._on_close

    def _on_established(self) -> None:
        self._ever_established = True
        self._consecutive_failures = 0
        self._pump()

    def _pump(self) -> None:
        conn = self.conn
        if conn is None or not conn.established or self.done or self.failed:
            return
        rem = conn.remaining
        if rem is not None and rem > 0:
            conn.send_virtual(rem)
        if conn.remaining == 0:
            conn.finish()

    def _on_close(self, error: Optional[Exception]) -> None:
        if self.done or self.failed is not None:
            return
        conn = self.conn
        if error is None and conn is not None and conn.trailer_delivered:
            # clean close after payload + trailer: the server's FIN made
            # it back through the cascade, the transfer is complete
            self._settle(None)
            return
        self._schedule_retry(error)

    def _tel_end_attempt(self, outcome: str) -> None:
        if self._attempt_span is not None:
            self.telemetry.spans.end(
                self._attempt_span, args={"outcome": outcome}
            )
            self._attempt_span = None

    def _schedule_retry(self, error: Optional[Exception]) -> None:
        self.conn = None
        self._tel_end_attempt("failed")
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("lsl.failover_retries").inc()
            self.telemetry.flight_dump(
                "failover",
                detail={
                    "session": self.session_id.hex()[:8],
                    "attempt": self.attempts,
                    "error": str(error),
                },
            )
        if self.attempts >= self.max_attempts:
            self._settle(
                error
                if error is not None
                else FailoverExhausted(f"gave up after {self.attempts} attempts")
            )
            return
        if len(self.routes) > 1:
            # fail over: next-ranked candidate (round robin over ranks)
            self.route_index += 1
            self.failovers += 1
        delay = self.backoff.delay(self._consecutive_failures, self._rng)
        self._consecutive_failures += 1
        self.stack.net.logger.log(
            "lsl-failover",
            "retry-scheduled",
            (self.attempts, round(delay, 4), str(error)),
        )
        self._retry_event = self.stack.net.sim.schedule(delay, self._start)

    def _settle(self, error: Optional[Exception]) -> None:
        if self.done or self.failed is not None:
            return
        if error is None:
            self.done = True
        else:
            self.failed = error
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
        self._tel_end_attempt("done" if error is None else "failed")
        if self.session_span is not None:
            self.telemetry.spans.end(
                self.session_span,
                args={
                    "attempts": self.attempts,
                    "failovers": self.failovers,
                    "error": str(error) if error is not None else None,
                },
            )
            self.session_span = None
        if error is not None and self.telemetry.enabled:
            self.telemetry.flight_dump(
                "transfer-abort",
                detail={
                    "session": self.session_id.hex()[:8],
                    "error": str(error),
                },
            )
        if self.on_done:
            self.on_done(error)

    def mark_complete(self) -> None:
        """Application-level ack: the receiver verified the session."""
        self._settle(None)
