"""LSL client: open a session over a loose source route.

The client dials the **first hop** of the route (a depot, or directly
the server for a route of length 1), transmits the LSL header as the
first bytes of the stream, and then treats the sublink exactly like a
socket. Everything past the first hop is the depots' business.

Example
-------
::

    conn = lsl_connect(
        stack,
        route=[("denver-depot", 4000), ("uiuc", 5000)],
        payload_length=64 << 20,
    )
    conn.on_writable = pump          # fill as buffer space opens
    ...
    conn.finish()                    # sends the MD5 trailer + FIN
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.lsl.digest import StreamDigest
from repro.lsl.errors import LslError, RouteError
from repro.lsl.header import SESSION_ACK, STREAM_UNTIL_FIN, LslHeader, RouteHop
from repro.lsl.session import SessionId, new_session_id
from repro.tcp.buffers import StreamChunk
from repro.tcp.sockets import SimSocket, TcpStack
from repro.tcp.trace import ConnectionTrace

HopLike = Union[RouteHop, Tuple[str, int]]


def _normalize_route(route: Sequence[HopLike]) -> Tuple[RouteHop, ...]:
    if not route:
        raise RouteError("empty route")
    return tuple(RouteHop(h[0], h[1]) for h in route)


class LslClientConnection:
    """Client endpoint of an LSL session."""

    def __init__(
        self,
        stack: TcpStack,
        header: LslHeader,
        on_connected: Optional[Callable[[], None]] = None,
        trace: Optional[ConnectionTrace] = None,
        digest_state: Optional[StreamDigest] = None,
    ) -> None:
        self.stack = stack
        self.header = header
        self.digest = digest_state if digest_state is not None else StreamDigest()
        self.bytes_sent = header.resume_offset  # payload bytes queued so far
        self._trailer_sent = False
        self._pending_trailer = b""
        self._user_on_connected = on_connected
        self._awaiting_ack = header.sync
        self.established = False

        # reverse-direction (server -> client) deliveries
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[Optional[Exception]], None]] = None

        self.sock: SimSocket = stack.socket()
        self.sock.on_readable = self._sock_readable
        self.sock.on_writable = self._sock_writable
        self.sock.on_close = self._sock_closed
        first = header.route[header.hop_index]
        self.sock.connect(
            (first.host, first.port), on_connected=self._connected, trace=trace
        )

    # -- connection events ------------------------------------------------

    def _connected(self) -> None:
        self.sock.send(self.header.encode())
        if not self._awaiting_ack:
            self._established()

    def _established(self) -> None:
        self.established = True
        if self._user_on_connected:
            self._user_on_connected()

    def _sock_readable(self) -> None:
        if self._awaiting_ack:
            chunks = self.sock.recv(1)
            if not chunks:
                return
            first = chunks[0]
            if first.data != SESSION_ACK:
                self.sock.abort()
                return
            self._awaiting_ack = False
            self._established()
            if self.sock.readable_bytes == 0:
                return
        if self.on_readable:
            self.on_readable()

    def _sock_writable(self) -> None:
        if self._pending_trailer:
            self._flush_trailer()
            return
        if self.on_writable:
            self.on_writable()

    def _sock_closed(self, error: Optional[Exception]) -> None:
        if self.on_close:
            self.on_close(error)

    # -- payload transmission ------------------------------------------------

    @property
    def session_id(self) -> SessionId:
        return self.header.session_id

    @property
    def declared_length(self) -> Optional[int]:
        pl = self.header.payload_length
        return None if pl == STREAM_UNTIL_FIN else pl

    @property
    def remaining(self) -> Optional[int]:
        if self.declared_length is None:
            return None
        return self.declared_length - self.bytes_sent

    @property
    def send_space(self) -> int:
        return self.sock.send_space

    def send(self, data: bytes) -> int:
        """Queue payload bytes; returns how many were accepted."""
        self._check_payload_room(len(data))
        accepted = self.sock.send(data)
        if accepted:
            self.digest.update(data[:accepted])
            self.bytes_sent += accepted
        return accepted

    def send_virtual(self, nbytes: int) -> int:
        """Queue virtual payload; returns how many bytes were accepted."""
        self._check_payload_room(nbytes)
        accepted = self.sock.send_virtual(nbytes)
        if accepted:
            self.digest.update_virtual(accepted)
            self.bytes_sent += accepted
        return accepted

    def _check_payload_room(self, n: int) -> None:
        if self._trailer_sent:
            raise LslError("send after finish()")
        rem = self.remaining
        if rem is not None and n > rem:
            raise LslError(
                f"payload overrun: {n} bytes offered, {rem} remaining of "
                f"declared {self.declared_length}"
            )

    def recv(self, max_bytes: Optional[int] = None) -> List[StreamChunk]:
        """Read reverse-direction (server to client) data."""
        return self.sock.recv(max_bytes)

    @property
    def readable_bytes(self) -> int:
        return self.sock.readable_bytes

    # -- completion --------------------------------------------------------------

    def finish(self) -> None:
        """Declare the payload complete: send the MD5 trailer (when the
        header requested one) and FIN the sublink."""
        if self._trailer_sent:
            return
        rem = self.remaining
        if rem is not None and rem > 0:
            raise LslError(f"finish() with {rem} payload bytes undelivered")
        self._trailer_sent = True
        if self.header.digest:
            if self.declared_length is None:
                raise LslError("digest requires a declared payload length")
            self._pending_trailer = self.digest.digest()
            self._flush_trailer()
        else:
            self.sock.close()

    def _flush_trailer(self) -> None:
        """Queue the digest trailer, deferring on a full send buffer."""
        sent = self.sock.send(self._pending_trailer)
        self._pending_trailer = self._pending_trailer[sent:]
        if not self._pending_trailer:
            self.sock.close()

    def close(self) -> None:
        """Alias for :meth:`finish` when a digest is pending, else FIN."""
        if self.header.digest and not self._trailer_sent:
            self.finish()
        else:
            self.sock.close()

    def abort(self) -> None:
        self.sock.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LslClientConnection {self.session_id.hex()[:8]} "
            f"sent={self.bytes_sent}>"
        )


def lsl_connect(
    stack: TcpStack,
    route: Sequence[HopLike],
    payload_length: Optional[int] = None,
    digest: bool = True,
    sync: bool = True,
    on_connected: Optional[Callable[[], None]] = None,
    session_id: Optional[SessionId] = None,
    trace: Optional[ConnectionTrace] = None,
) -> LslClientConnection:
    """Open an LSL session along ``route`` (last hop = server).

    ``payload_length`` declares the client-to-server payload size; it
    is required when ``digest`` is on (the MD5 trailer needs a framing
    boundary). A route of length 1 degenerates to a direct session —
    LSL header but no depots.

    With ``sync=True`` (the paper's connection-oriented mode)
    ``on_connected`` fires only after the server's SESSION_ACK has
    travelled back through the whole cascade — so the end-to-end
    connection cost of each additional depot is *paid*, which is why
    the paper's smallest transfers lose with LSL. ``sync=False`` fires
    it as soon as the first sublink is up (optimistic streaming).
    """
    hops = _normalize_route(route)
    if digest and payload_length is None:
        raise LslError("digest=True requires payload_length")
    if session_id is None:
        session_id = new_session_id(stack.net.rng.stream("lsl-session-ids"))
    header = LslHeader(
        session_id=session_id,
        route=hops,
        hop_index=0,
        payload_length=(
            STREAM_UNTIL_FIN if payload_length is None else payload_length
        ),
        digest=digest,
        sync=sync,
    )
    return LslClientConnection(stack, header, on_connected, trace)


def lsl_rebind(
    stack: TcpStack,
    route: Sequence[HopLike],
    session_id: SessionId,
    resume_offset: int,
    payload_length: Optional[int] = None,
    digest: bool = True,
    sync: bool = True,
    digest_state: Optional[StreamDigest] = None,
    on_connected: Optional[Callable[[], None]] = None,
    trace: Optional[ConnectionTrace] = None,
) -> LslClientConnection:
    """Re-attach to an existing session over a (possibly different)
    route — the mobility case of Section III: transport connections may
    come and go without disrupting the session handle.

    ``digest_state`` carries the client's running MD5 across the
    transport change; required when ``digest`` is on and data was
    already sent.
    """
    hops = _normalize_route(route)
    if digest and payload_length is None:
        raise LslError("digest=True requires payload_length")
    if digest and resume_offset > 0 and digest_state is None:
        raise LslError("rebind with digest needs the prior digest_state")
    header = LslHeader(
        session_id=session_id,
        route=hops,
        hop_index=0,
        payload_length=(
            STREAM_UNTIL_FIN if payload_length is None else payload_length
        ),
        digest=digest,
        sync=sync,
        rebind=True,
        resume_offset=resume_offset,
    )
    return LslClientConnection(stack, header, on_connected, trace, digest_state)
