"""LSL error hierarchy (canonical home: :mod:`repro.lsl.core.errors`)."""

from __future__ import annotations

from repro.lsl.core.errors import (
    DepotDown,
    DigestMismatch,
    FailoverExhausted,
    LslError,
    ProtocolError,
    RouteError,
    SessionUnknown,
)

__all__ = [
    "LslError",
    "ProtocolError",
    "RouteError",
    "SessionUnknown",
    "DigestMismatch",
    "DepotDown",
    "FailoverExhausted",
]
