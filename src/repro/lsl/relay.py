"""The depot's store-and-forward pump.

A :class:`RelayPump` moves stream data from an upstream socket to a
downstream socket through a **bounded relay buffer** — the paper's
"small, short-lived intermediate buffer". Backpressure is end-to-end
by construction:

- when the relay buffer is full the pump stops reading, the upstream
  TCP receive buffer fills, its advertised window closes, and the
  original sender stalls;
- when the downstream TCP send buffer is full the pump stops writing
  and the relay buffer fills (then see above).

The pump can model the depot's processing cost (the paper's depots are
"general purpose, single-homed computers ... not designed to forward
traffic efficiently"): each pulled batch becomes available for
forwarding only after ``fixed_delay_s + nbytes * per_byte_cost_s`` of
simulated host time, serialized through a single virtual CPU.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.sim import Simulator
from repro.sim.kernel import Event
from repro.tcp.buffers import StreamChunk
from repro.tcp.sockets import SimSocket


class RelayPump:
    """One direction of a depot's transport-to-transport binding."""

    def __init__(
        self,
        sim: Simulator,
        upstream: SimSocket,
        downstream: SimSocket,
        buffer_bytes: int = 256 * 1024,
        fixed_delay_s: float = 0.0,
        per_byte_cost_s: float = 0.0,
        on_finished: Optional[Callable[[Optional[Exception]], None]] = None,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("relay buffer must be positive")
        self.sim = sim
        self.upstream = upstream
        self.downstream = downstream
        self.capacity = buffer_bytes
        self.fixed_delay_s = fixed_delay_s
        self.per_byte_cost_s = per_byte_cost_s
        self.on_finished = on_finished

        self._ready: Deque[StreamChunk] = deque()
        self._head_offset = 0  # bytes of the head chunk already forwarded
        self._ready_bytes = 0
        self._processing_bytes = 0
        self._cpu_free_at = 0.0
        self._cpu_events: List[Event] = []
        self._closed_downstream = False
        self.finished = False

        # stats
        self.bytes_relayed = 0
        self.peak_buffered = 0

        # the peer may have FIN'd before the pump existed (e.g. a short
        # payload fully sent during the depot's dial window): replay that
        # state here or the EOF would never propagate downstream
        self._eof_seen = upstream.conn is not None and upstream.conn.peer_closed
        upstream.on_readable = self._on_upstream_readable
        upstream.on_peer_fin = self._on_upstream_fin
        downstream.on_writable = self._on_downstream_writable

    # -- buffer accounting ----------------------------------------------------

    @property
    def buffered_bytes(self) -> int:
        """Bytes held in the depot (processing + ready to forward)."""
        return self._ready_bytes + self._processing_bytes

    @property
    def free_space(self) -> int:
        return self.capacity - self.buffered_bytes

    # -- upstream side ------------------------------------------------------------

    def _on_upstream_readable(self) -> None:
        self.pull()

    def _on_upstream_fin(self) -> None:
        self._eof_seen = True
        self.pull()
        self._maybe_finish()

    def pull(self) -> None:
        """Read from upstream into the relay buffer (bounded)."""
        if self.finished:
            return
        # inline free_space: this runs once per upstream delivery
        space = self.capacity - self._ready_bytes - self._processing_bytes
        upstream = self.upstream
        if space <= 0 or upstream.conn is None:
            return
        if upstream.readable_bytes <= 0:
            if self._eof_seen:
                self._maybe_finish()
            return
        chunks = upstream.recv(space)
        if not chunks:
            return
        nbytes = 0
        for c in chunks:
            nbytes += c.length
        if self.fixed_delay_s > 0.0 or self.per_byte_cost_s > 0.0:
            # serialize the batch through the depot's CPU
            self._processing_bytes += nbytes
            start = max(self._cpu_free_at, self.sim.now)
            self._cpu_free_at = (
                start + self.fixed_delay_s + nbytes * self.per_byte_cost_s
            )
            self._cpu_events.append(
                self.sim.schedule_at(
                    self._cpu_free_at, self._batch_processed, chunks, nbytes
                )
            )
        else:
            self._enqueue_ready(chunks, nbytes)
            self.push()

    def _batch_processed(self, chunks, nbytes: int) -> None:
        if self.finished:
            return  # aborted while this batch sat on the CPU
        if self._cpu_events:
            self._cpu_events.pop(0)  # batches complete in schedule order
        self._processing_bytes -= nbytes
        self._enqueue_ready(chunks, nbytes)
        self.push()

    def _enqueue_ready(self, chunks, nbytes: int) -> None:
        self._ready.extend(chunks)
        self._ready_bytes += nbytes
        if self.buffered_bytes > self.peak_buffered:
            self.peak_buffered = self.buffered_bytes

    # -- downstream side --------------------------------------------------------------

    def _on_downstream_writable(self) -> None:
        self.push()
        # forwarding freed relay space: top the buffer back up
        self.pull()

    def push(self) -> None:
        """Forward ready chunks downstream as its send buffer allows."""
        if self.finished or self._closed_downstream or self.downstream.conn is None:
            return
        ready = self._ready
        downstream = self.downstream
        # Partial forwards advance an offset into the head chunk instead
        # of rebuilding it: the old ``chunk.data[sent:]`` re-copied the
        # unsent tail on every stall, which is quadratic when a large
        # chunk trickles out through a slow downstream window.
        offset = self._head_offset
        while ready:
            space = downstream.send_space
            if space <= 0:
                self._head_offset = offset
                return
            chunk = ready[0]
            remaining = chunk.length - offset
            take = remaining if remaining < space else space
            if chunk.data is None:
                sent = downstream.send_virtual(take)
            else:
                # a memoryview slice shares the chunk's storage (O(1));
                # every consumer downstream treats it as read-only bytes
                sent = downstream.send(memoryview(chunk.data)[offset : offset + take])
            if sent <= 0:
                self._head_offset = offset
                return
            self._ready_bytes -= sent
            self.bytes_relayed += sent
            offset += sent
            if offset == chunk.length:
                ready.popleft()
                offset = 0
        self._head_offset = offset
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Propagate EOF downstream once everything has been forwarded."""
        if (
            self._eof_seen
            and not self._closed_downstream
            and not self._ready
            and self._processing_bytes == 0
            and (self.upstream.conn is None or self.upstream.readable_bytes == 0)
        ):
            self._closed_downstream = True
            self.downstream.close()
            self._finish(None)

    def _finish(self, error: Optional[Exception]) -> None:
        if self.finished:
            return
        self.finished = True
        if self.on_finished:
            self.on_finished(error)

    def abort(self, error: Optional[Exception] = None) -> None:
        """Tear the pump down (a sublink died)."""
        for ev in self._cpu_events:
            ev.cancel()
        self._cpu_events.clear()
        self._ready.clear()
        self._head_offset = 0
        self._ready_bytes = 0
        self._processing_bytes = 0
        self._finish(error)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RelayPump buffered={self.buffered_bytes}/{self.capacity} "
            f"relayed={self.bytes_relayed} eof={self._eof_seen}>"
        )
