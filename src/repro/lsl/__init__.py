"""The Logistical Session Layer (the paper's contribution).

A *session* is a conversation identified by a 128-bit session id and
carried over one or more **cascaded TCP connections** ("sublinks")
through intermediate **depots** along a client-specified loose source
route::

    client ──TCP──▶ depot ──TCP──▶ depot ──TCP──▶ server
             sublink 1      sublink 2      sublink 3

Each sublink is an ordinary TCP connection, so TCP's congestion
control still governs every packet; the depot is an unprivileged
user-level process (the paper's ``lsd``) holding a small, short-lived
relay buffer. Because each sublink's RTT is a fraction of the
end-to-end RTT, every sublink's window opens faster and recovers from
loss faster — the source of the throughput gain the paper measures.

Public API
----------
- :func:`repro.lsl.client.lsl_connect` — open a session over a route.
- :class:`repro.lsl.server.LslServer` — accept sessions.
- :class:`repro.lsl.depot.Depot` — run a depot (``lsd``).
- :class:`repro.lsl.header.LslHeader` — the wire header.
- :class:`repro.lsl.digest.StreamDigest` — end-to-end MD5 over the
  stream (the end-to-end integrity check the paper keeps at the ends).
"""

from repro.lsl.errors import (
    DepotDown,
    DigestMismatch,
    FailoverExhausted,
    LslError,
    ProtocolError,
    RouteError,
    SessionUnknown,
)
from repro.lsl.header import HEADER_MAGIC, LslHeader, RouteHop
from repro.lsl.session import (
    BackoffPolicy,
    SessionId,
    SessionRegistry,
    new_session_id,
)
from repro.lsl.digest import StreamDigest
from repro.lsl.relay import RelayPump
from repro.lsl.depot import Depot
from repro.lsl.client import (
    FailoverTransfer,
    LslClientConnection,
    lsl_connect,
    lsl_rebind,
    virtual_digest_factory,
)
from repro.lsl.server import LslServer, LslServerConnection
from repro.lsl.framing import FrameDecoder, encode_frame_header
from repro.lsl.striped import StripedClient, StripedLslServer
from repro.lsl.storeforward import StoreForwardDepot

__all__ = [
    "LslError",
    "ProtocolError",
    "RouteError",
    "SessionUnknown",
    "DigestMismatch",
    "DepotDown",
    "FailoverExhausted",
    "BackoffPolicy",
    "FailoverTransfer",
    "virtual_digest_factory",
    "LslHeader",
    "RouteHop",
    "HEADER_MAGIC",
    "SessionId",
    "new_session_id",
    "SessionRegistry",
    "StreamDigest",
    "RelayPump",
    "Depot",
    "lsl_connect",
    "lsl_rebind",
    "LslClientConnection",
    "LslServer",
    "LslServerConnection",
    "FrameDecoder",
    "encode_frame_header",
    "StripedClient",
    "StripedLslServer",
    "StoreForwardDepot",
]
