"""Session-layer framing (canonical home: :mod:`repro.lsl.core.framing`)."""

from __future__ import annotations

from repro.lsl.core.framing import (
    FRAME_HEADER_LEN,
    MAX_FRAME_PAYLOAD,
    FrameDecoder,
    encode_frame_header,
)

__all__ = [
    "FRAME_HEADER_LEN",
    "MAX_FRAME_PAYLOAD",
    "FrameDecoder",
    "encode_frame_header",
]
