"""Tunable TCP parameters.

Defaults mirror the paper's testbed: Linux 2.4 with window scaling and
8 MB socket buffers ("the machines at both ends supported large windows
and were configured with 8 MByte TCP buffers"), MSS 1460 (Ethernet),
200 ms minimum RTO, delayed ACKs, and NewReno congestion control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TcpOptions:
    """Per-connection TCP configuration."""

    #: Maximum segment size (payload bytes per segment).
    mss: int = 1460
    #: Send socket buffer in bytes (paper: 8 MB for the exercised direction).
    send_buffer: int = 8 * 1024 * 1024
    #: Receive socket buffer in bytes; also caps the advertised window.
    recv_buffer: int = 8 * 1024 * 1024
    #: Initial congestion window in segments (RFC 2581 allows 2).
    initial_cwnd_segments: int = 2
    #: Initial slow-start threshold in bytes ("infinite" per RFC 2581).
    initial_ssthresh: int = 1 << 30
    #: Congestion control flavour: "tahoe", "reno" or "newreno".
    congestion_control: str = "newreno"
    #: Selective acknowledgements (RFC 2018/3517). Linux 2.4 — the
    #: paper's testbed — enables SACK by default.
    sack: bool = True
    #: Maximum SACK blocks carried per ACK.
    max_sack_blocks: int = 3
    #: Initial RTO before any RTT sample (RFC 2988 says 3 s).
    initial_rto: float = 3.0
    #: RTO clamp (Linux uses 200 ms / 120 s).
    min_rto: float = 0.2
    max_rto: float = 120.0
    #: Delayed-ACK: ACK every second full segment, else after this delay.
    delayed_ack: bool = True
    delayed_ack_timeout: float = 0.2
    #: Duplicate-ACK threshold for fast retransmit.
    dupack_threshold: int = 3
    #: TIME_WAIT linger (shortened vs. real 2*MSL to keep sims snappy;
    #: long enough that stray segments from the closed connection drain).
    time_wait_s: float = 1.0
    #: Maximum consecutive RTO backoffs before the connection aborts.
    max_retries: int = 15

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.send_buffer < self.mss or self.recv_buffer < self.mss:
            raise ValueError("socket buffers must hold at least one MSS")
        if self.initial_cwnd_segments < 1:
            raise ValueError("initial cwnd must be at least 1 segment")
        if self.congestion_control not in ("tahoe", "reno", "newreno"):
            raise ValueError(
                f"unknown congestion control {self.congestion_control!r}"
            )
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("invalid RTO clamp")
        if self.dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")

    @property
    def initial_cwnd_bytes(self) -> int:
        return self.initial_cwnd_segments * self.mss

    def with_(self, **kwargs) -> "TcpOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Options resembling a small-buffer mobile device (the paper notes the
#: LSL gain is *larger* with limited end-node buffers).
SMALL_BUFFER_OPTIONS = TcpOptions(send_buffer=64 * 1024, recv_buffer=64 * 1024)
