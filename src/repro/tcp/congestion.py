"""Congestion-control flavours: Tahoe, Reno, NewReno.

Each class owns ``cwnd``/``ssthresh`` (bytes) and reacts to events the
connection reports. The connection keeps the mechanics that are the
same across flavours (dupack counting, which segment to retransmit);
the flavour decides window arithmetic and whether fast *recovery*
exists at all:

- **Tahoe** — fast retransmit but no fast recovery: any loss signal
  collapses cwnd to 1 MSS and re-enters slow start.
- **Reno** — RFC 2581 fast recovery: halve into recovery, inflate by
  one MSS per further dupack, deflate to ssthresh on the first new ACK
  (exits recovery even on a partial ACK).
- **NewReno** — RFC 2582: as Reno, but a partial ACK retransmits the
  next hole and stays in recovery until the ``recover`` point is
  cumulatively acknowledged. This is what Linux 2.4 (the paper's
  testbed) effectively does without SACK.

The growth rules implement RFC 2581 precisely: slow start adds one MSS
per new ACK while ``cwnd < ssthresh``; congestion avoidance adds
``mss*mss/cwnd`` per ACK (the standard byte-counting approximation of
one MSS per RTT). This RTT-clocked growth is the entire mechanism the
paper exploits: shorter sublink RTTs mean more ACKs per second, so each
cascaded hop opens its window and recovers from loss faster than the
end-to-end connection can.
"""

from __future__ import annotations


class CongestionControl:
    """Base class holding the shared AIMD arithmetic."""

    #: Flavour tag (used in reprs and scenario configs).
    name = "base"
    #: Whether the flavour performs Reno-style fast recovery.
    has_fast_recovery = True
    #: Whether partial ACKs keep the connection in recovery (NewReno).
    stays_in_recovery_on_partial_ack = False

    def __init__(self, mss: int, initial_cwnd: int, initial_ssthresh: int) -> None:
        self.mss = mss
        self.cwnd: float = float(initial_cwnd)
        self.ssthresh: float = float(initial_ssthresh)

    # -- normal ACK processing ------------------------------------------

    def on_new_ack(self, bytes_acked: int) -> None:
        """Cumulative ACK advanced outside recovery: grow the window."""
        if self.cwnd < self.ssthresh:
            # slow start: one MSS per ACK, but never more than was acked
            # (prevents ACK-splitting inflation, RFC 3465 L=1)
            self.cwnd += min(self.mss, bytes_acked)
        else:
            self.cwnd += self.mss * self.mss / self.cwnd

    # -- loss events -----------------------------------------------------

    def on_fast_retransmit(self, flight_size: int) -> None:
        """Third duplicate ACK: set ssthresh and the recovery window."""
        self.ssthresh = max(flight_size / 2.0, 2.0 * self.mss)
        if self.has_fast_recovery:
            self.cwnd = self.ssthresh + 3.0 * self.mss
        else:  # Tahoe: straight back to slow start
            self.cwnd = float(self.mss)

    def on_dupack_in_recovery(self) -> None:
        """Window inflation: each further dupack signals a departure."""
        if self.has_fast_recovery:
            self.cwnd += self.mss

    def on_partial_ack(self, bytes_acked: int) -> None:
        """NewReno deflation: remove the acked amount, add back one MSS."""
        self.cwnd = max(self.cwnd - bytes_acked + self.mss, float(self.mss))

    def on_exit_recovery(self) -> None:
        """Full ACK of the recovery point: deflate to ssthresh."""
        self.cwnd = max(self.ssthresh, 2.0 * self.mss)

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: multiplicative decrease + slow start."""
        self.ssthresh = max(flight_size / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    # -- helpers ----------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} cwnd={self.cwnd:.0f} "
            f"ssthresh={self.ssthresh:.0f}>"
        )


class Tahoe(CongestionControl):
    """Fast retransmit only; every loss returns to slow start."""

    name = "tahoe"
    has_fast_recovery = False


class Reno(CongestionControl):
    """RFC 2581 fast retransmit + fast recovery."""

    name = "reno"
    has_fast_recovery = True
    stays_in_recovery_on_partial_ack = False


class NewReno(CongestionControl):
    """RFC 2582: Reno + partial-ACK hole retransmission."""

    name = "newreno"
    has_fast_recovery = True
    stays_in_recovery_on_partial_ack = True


_FLAVOURS = {"tahoe": Tahoe, "reno": Reno, "newreno": NewReno}


def make_congestion_control(
    flavour: str, mss: int, initial_cwnd: int, initial_ssthresh: int
) -> CongestionControl:
    """Instantiate a flavour by name ("tahoe", "reno", "newreno")."""
    try:
        cls = _FLAVOURS[flavour]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {flavour!r}; "
            f"expected one of {sorted(_FLAVOURS)}"
        ) from None
    return cls(mss, initial_cwnd, initial_ssthresh)
