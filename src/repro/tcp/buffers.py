"""Send and receive stream buffers.

The stream is modelled as byte *ranges*. Applications write either real
``bytes`` (LSL's wire header, digests, integrity-checked payloads) or
**virtual** bytes — a length with no materialized content — so that the
memory cost of a 512 MB simulated transfer is proportional to the
window, not the transfer.

:class:`SendBuffer`
    Holds unacknowledged stream data for (re)transmission: a FIFO of
    chunks addressed by absolute stream offset. ``payload_for`` cuts a
    segment's worth of data, never straddling a real/virtual boundary
    (so every segment is wholly real or wholly virtual).
:class:`ReceiveBuffer`
    Reassembles possibly out-of-order, possibly overlapping segments
    and exposes an in-order queue of :class:`StreamChunk` for the
    application. Advertised-window accounting covers both the ready
    queue and out-of-order storage, as a real kernel's does.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.util.intervals import IntervalSet


class StreamChunk(NamedTuple):
    """A run of in-order stream bytes: real (``data``) or virtual."""

    length: int
    data: Optional[bytes]

    @property
    def is_virtual(self) -> bool:
        return self.data is None


class SendBuffer:
    """Outgoing stream data awaiting transmission/acknowledgement.

    Offsets are absolute stream offsets (0 = first payload byte, i.e.
    ISS+1 in sequence space; the connection does the conversion).
    """

    __slots__ = ("capacity", "start", "end", "_chunks", "_head")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.start = 0  # first byte still buffered (un-acked)
        self.end = 0  # next byte the app will write
        # chunks: (start_off, end_off, data-or-None), ordered, disjoint
        self._chunks: List[Tuple[int, int, Optional[bytes]]] = []
        self._head = 0  # index of first live chunk (lazy pop)

    # -- space accounting ------------------------------------------------

    @property
    def used(self) -> int:
        return self.end - self.start

    @property
    def free_space(self) -> int:
        return self.capacity - self.used

    # -- writing -----------------------------------------------------------

    def write(self, data: bytes) -> None:
        """Append real bytes. Caller must check ``free_space`` first."""
        n = len(data)
        if n == 0:
            return
        if n > self.free_space:
            raise BufferError(f"send buffer overflow: {n} > {self.free_space}")
        self._chunks.append((self.end, self.end + n, data))
        self.end += n

    def write_virtual(self, n: int) -> None:
        """Append ``n`` virtual (length-only) bytes."""
        if n <= 0:
            if n == 0:
                return
            raise ValueError(f"negative virtual write {n}")
        if n > self.free_space:
            raise BufferError(f"send buffer overflow: {n} > {self.free_space}")
        # merge with a trailing virtual chunk to keep the list short
        if self._chunks and self._chunks[-1][2] is None and len(self._chunks) > self._head:
            s, e, _ = self._chunks[-1]
            if e == self.end:
                self._chunks[-1] = (s, e + n, None)
                self.end += n
                return
        self._chunks.append((self.end, self.end + n, None))
        self.end += n

    # -- reading for (re)transmission ---------------------------------------

    def payload_for(self, offset: int, max_len: int) -> StreamChunk:
        """Cut up to ``max_len`` bytes starting at ``offset``.

        The cut never crosses a real/virtual boundary, so the result is
        homogeneous — but it *does* span contiguous real chunks, so
        segmentation depends on the byte stream, not on how the app
        batched its writes (virtual writes already coalesce on entry,
        and a virtual transfer must segment identically to the same
        stream written as real bytes). Raises if ``offset`` is outside
        the buffered range.
        """
        if not (self.start <= offset < self.end):
            raise IndexError(
                f"offset {offset} outside buffered range [{self.start},{self.end})"
            )
        chunks = self._chunks
        for i in range(self._head, len(chunks)):
            s, e, data = chunks[i]
            if offset < e:
                if offset < s:  # gap cannot happen: chunks are contiguous
                    raise AssertionError("send buffer chunk discontinuity")
                take = min(max_len, e - offset)
                if data is None:
                    return StreamChunk(take, None)
                lo = offset - s
                part = data[lo : lo + take]
                if take == max_len or e == self.end:
                    if type(part) is memoryview:
                        # apps may queue memoryview slices (the relay
                        # pump does); wire payloads stay real bytes so
                        # observers can use the full bytes API
                        part = bytes(part)
                    return StreamChunk(take, part)
                pieces = [part]
                for j in range(i + 1, len(chunks)):
                    _, _, more = chunks[j]
                    if more is None:
                        break
                    piece = more[: max_len - take]
                    pieces.append(piece)
                    take += len(piece)
                    if take == max_len:
                        break
                return StreamChunk(take, b"".join(pieces))
        raise AssertionError("offset within range but no chunk found")

    # -- acknowledgement -----------------------------------------------------

    def release(self, upto_offset: int) -> int:
        """Free all data below ``upto_offset`` (cumulative ACK).

        Returns the number of bytes released.
        """
        if upto_offset <= self.start:
            return 0
        if upto_offset > self.end:
            raise ValueError(
                f"cannot release to {upto_offset}: only {self.end} written"
            )
        released = upto_offset - self.start
        self.start = upto_offset
        chunks = self._chunks
        head = self._head
        while head < len(chunks) and chunks[head][1] <= upto_offset:
            head += 1
        # trim a partially-acked head chunk (keep offsets; slicing real
        # data here would copy — payload_for already slices lazily)
        self._head = head
        if head > 64 and head * 2 > len(chunks):
            del chunks[:head]
            self._head = 0
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SendBuffer [{self.start},{self.end}) used={self.used} "
            f"free={self.free_space}>"
        )


class ReceiveBuffer:
    """Reassembly queue + in-order ready queue for one connection.

    The connection feeds segments via :meth:`segment_arrived` with
    sequence numbers already converted to stream offsets; this class
    returns how far ``rcv_nxt`` advanced.
    """

    __slots__ = (
        "capacity",
        "rcv_nxt",
        "_ooo",
        "_ooo_ranges",
        "_ready",
        "_ready_bytes",
        "delivered_total",
    )

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rcv_nxt = 0  # next expected stream offset
        # out-of-order store: start offset -> (end offset, data-or-None)
        self._ooo: Dict[int, Tuple[int, Optional[bytes]]] = {}
        # coalesced view of the out-of-order coverage (drives SACK blocks)
        self._ooo_ranges = IntervalSet()
        self._ready: Deque[StreamChunk] = deque()
        self._ready_bytes = 0
        self.delivered_total = 0  # cumulative bytes handed to the app

    # -- window accounting ---------------------------------------------------

    @property
    def ooo_bytes(self) -> int:
        """Distinct out-of-order bytes held (overlaps counted once)."""
        return self._ooo_ranges.total

    def sack_blocks(self, max_blocks: int = 3) -> List[Tuple[int, int]]:
        """Up to ``max_blocks`` out-of-order ranges (stream offsets),
        lowest first — the receiver's RFC 2018 SACK information."""
        out: List[Tuple[int, int]] = []
        for s, e in self._ooo_ranges:
            if e <= self.rcv_nxt:
                continue
            out.append((max(s, self.rcv_nxt), e))
            if len(out) >= max_blocks:
                break
        return out

    @property
    def readable_bytes(self) -> int:
        return self._ready_bytes

    @property
    def advertised_window(self) -> int:
        """Receive window to advertise: capacity minus unread in-order
        data. Out-of-order bytes are *not* subtracted — they already sit
        within the advertised window (the window is measured from
        ``rcv_nxt``), and subtracting them would retreat the window's
        right edge, which RFC 793 forbids and which would also make
        every duplicate ACK look like a window update."""
        return max(0, self.capacity - self._ready_bytes)

    # -- arrival ----------------------------------------------------------

    def segment_arrived(
        self, offset: int, length: int, data: Optional[bytes]
    ) -> int:
        """Accept a data range; returns bytes by which rcv_nxt advanced."""
        if length <= 0:
            return 0
        end = offset + length
        if end <= self.rcv_nxt:
            return 0  # entirely old: pure duplicate
        if offset < self.rcv_nxt:  # partial duplicate: trim the head
            cut = self.rcv_nxt - offset
            offset = self.rcv_nxt
            if data is not None:
                data = data[cut:]
            length = end - offset
        if offset > self.rcv_nxt:
            # out of order: store (last writer wins on exact-duplicate key)
            existing = self._ooo.get(offset)
            if existing is None or existing[0] < end:
                self._ooo[offset] = (end, data)
            self._ooo_ranges.add(offset, end)
            return 0
        # in order: deliver, then drain any contiguous out-of-order data
        before = self.rcv_nxt
        # _push_ready, inlined (once per in-order segment)
        ready = self._ready
        if data is None and ready and ready[-1].data is None:
            last = ready[-1]
            ready[-1] = StreamChunk(last.length + length, None)
        else:
            ready.append(StreamChunk(length, data))
        self._ready_bytes += length
        self.rcv_nxt = end
        if self._ooo_ranges:
            # any usable out-of-order entry has coverage at or beyond
            # rcv_nxt, so an empty range set means nothing to drain
            self._drain_ooo()
            self._ooo_ranges.discard_below(self.rcv_nxt)
        return self.rcv_nxt - before

    def _drain_ooo(self) -> None:
        while True:
            entry = self._ooo.pop(self.rcv_nxt, None)
            if entry is None:
                # tolerate overlapping stores: find any chunk covering rcv_nxt
                cover = None
                for s, (e, d) in self._ooo.items():
                    if s < self.rcv_nxt < e:
                        cover = (s, e, d)
                        break
                if cover is None:
                    return
                s, e, d = cover
                del self._ooo[s]
                cut = self.rcv_nxt - s
                self._push_ready(e - self.rcv_nxt, None if d is None else d[cut:])
                self.rcv_nxt = e
                continue
            end, data = entry
            if end <= self.rcv_nxt:
                continue
            self._push_ready(end - self.rcv_nxt, data)
            self.rcv_nxt = end

    def _push_ready(self, length: int, data: Optional[bytes]) -> None:
        # coalesce adjacent virtual chunks so app reads stay O(1)
        if data is None and self._ready and self._ready[-1].data is None:
            last = self._ready[-1]
            self._ready[-1] = StreamChunk(last.length + length, None)
        else:
            self._ready.append(StreamChunk(length, data))
        self._ready_bytes += length

    # -- application read -----------------------------------------------------

    def read(self, max_bytes: Optional[int] = None) -> List[StreamChunk]:
        """Consume up to ``max_bytes`` of in-order data (all if None)."""
        ready = self._ready
        if max_bytes is None:
            # drain-everything fast path (the server reads this way once
            # per delivery): hand over the queue wholesale
            out = list(ready)
            ready.clear()
            consumed = self._ready_bytes
            self._ready_bytes = 0
            self.delivered_total += consumed
            return out
        budget = max(0, max_bytes)
        out: List[StreamChunk] = []
        consumed = 0
        while ready and budget > 0:
            chunk = ready[0]
            if chunk.length <= budget:
                out.append(chunk)
                budget -= chunk.length
                consumed += chunk.length
                ready.popleft()
            else:
                if chunk.data is None:
                    out.append(StreamChunk(budget, None))
                    ready[0] = StreamChunk(chunk.length - budget, None)
                else:
                    out.append(StreamChunk(budget, chunk.data[:budget]))
                    ready[0] = StreamChunk(
                        chunk.length - budget, chunk.data[budget:]
                    )
                consumed += budget
                budget = 0
        self._ready_bytes -= consumed
        self.delivered_total += consumed
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReceiveBuffer rcv_nxt={self.rcv_nxt} ready={self._ready_bytes} "
            f"ooo={len(self._ooo)} win={self.advertised_window}>"
        )
