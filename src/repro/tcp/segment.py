"""TCP segments.

A :class:`Segment` is the TCP-layer payload of a network
:class:`~repro.net.packet.Packet`. Sequence numbers are Python ints
(monotonic, no 32-bit wraparound — connections in this reproduction
move < 2**63 bytes, and dropping wraparound removes a whole class of
modular-arithmetic bugs without affecting any of the dynamics the paper
measures).

``payload`` is either real ``bytes`` for the segment's data range or
``None`` for *virtual* (length-only) data; ``length`` is authoritative.
"""

from __future__ import annotations

from typing import Optional, Tuple

FLAG_SYN = 0x01
FLAG_ACK = 0x02
FLAG_FIN = 0x04
FLAG_RST = 0x08

#: TCP header bytes on the wire (20 base; we fold option bytes into the
#: constant since every segment in the paper's traces carries
#: timestamps — keeping it fixed simplifies size accounting).
TCP_HEADER_BYTES = 20


def flags_str(flags: int) -> str:
    """Human-readable flag string, e.g. ``"SYN|ACK"``."""
    parts = []
    if flags & FLAG_SYN:
        parts.append("SYN")
    if flags & FLAG_ACK:
        parts.append("ACK")
    if flags & FLAG_FIN:
        parts.append("FIN")
    if flags & FLAG_RST:
        parts.append("RST")
    return "|".join(parts) if parts else "-"


class Segment:
    """One TCP segment."""

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "length",
        "payload",
        "is_retransmit",
        "sack_blocks",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        length: int = 0,
        payload: Optional[bytes] = None,
    ) -> None:
        if payload is not None and len(payload) != length:
            raise ValueError(
                f"payload length {len(payload)} != declared length {length}"
            )
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.length = length
        self.payload = payload
        self.is_retransmit = False
        #: SACK blocks: absolute-sequence ``(start, end)`` pairs.
        self.sack_blocks: Tuple[Tuple[int, int], ...] = ()

    # -- derived -------------------------------------------------------

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def seq_space(self) -> int:
        """Sequence space consumed: data bytes plus SYN/FIN flags."""
        return self.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """First sequence number *after* this segment."""
        return self.seq + self.seq_space

    @property
    def wire_bytes(self) -> int:
        """Bytes this segment occupies on the wire (incl. TCP header;
        the IP header is added by the packet layer). SACK blocks cost
        their RFC 2018 option size: 2 bytes + 8 per block."""
        extra = 2 + 8 * len(self.sack_blocks) if self.sack_blocks else 0
        return TCP_HEADER_BYTES + extra + self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Seg {self.src_port}->{self.dst_port} {flags_str(self.flags)} "
            f"seq={self.seq} ack={self.ack} len={self.length} win={self.window}"
            f"{' RTX' if self.is_retransmit else ''}>"
        )


# -- pooling ---------------------------------------------------------------
#
# Mirrors the Packet pool (see repro.net.packet): the receiving TCP
# stack recycles a segment once ``segment_arrived`` returns, the
# sending connection allocates through :func:`acquire_segment`.
# Segments dropped with their packet in the network are never recycled
# and the pool refills lazily.

_POOL_MAX = 512
_pool: list = []


def acquire_segment(
    src_port: int,
    dst_port: int,
    seq: int,
    ack: int,
    flags: int,
    window: int,
    length: int = 0,
    payload: Optional[bytes] = None,
) -> Segment:
    """A :class:`Segment`, recycled when possible."""
    pool = _pool
    if pool:
        if payload is not None and len(payload) != length:
            raise ValueError(
                f"payload length {len(payload)} != declared length {length}"
            )
        s = pool.pop()
        s.src_port = src_port
        s.dst_port = dst_port
        s.seq = seq
        s.ack = ack
        s.flags = flags
        s.window = window
        s.length = length
        s.payload = payload
        s.is_retransmit = False
        s.sack_blocks = ()
        return s
    return Segment(src_port, dst_port, seq, ack, flags, window, length, payload)


def recycle_segment(segment: Segment) -> None:
    """Return a dead segment to the pool. The caller must hold the only
    live reference (nothing may touch the object afterwards)."""
    if len(_pool) < _POOL_MAX:
        segment.payload = None  # release data/SACK references for GC
        segment.sack_blocks = ()
        _pool.append(segment)
