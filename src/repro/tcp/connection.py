"""The TCP connection state machine.

Implements RFC 793 connection management plus RFC 2581/2582 congestion
control on top of the :mod:`repro.net` packet layer:

- active/passive open with SYN retransmission and exponential backoff,
- cumulative ACKs, duplicate-ACK counting, fast retransmit,
  Reno/NewReno fast recovery (flavour chosen by
  :class:`~repro.tcp.options.TcpOptions`),
- retransmission timeout with Karn-invalidated RTT sampling and
  go-back-N resend (the pre-SACK behaviour of the paper's era),
- receiver-side delayed ACKs, immediate dup-ACKs on out-of-order data,
- zero-window handling: receiver window updates plus a sender persist
  timer with 1-byte probes — this is what propagates backpressure
  through an LSL depot whose relay buffer fills,
- orderly FIN teardown through TIME_WAIT, and RST on abort.

Sequence numbers are absolute ints; stream offsets (0-based payload
byte numbering) are ``seq - (iss+1)`` on the send side and
``seq - (irs+1)`` on the receive side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import IP_HEADER_BYTES, PROTO_TCP, Packet, acquire_packet
from repro.sim import Timer
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import make_congestion_control
from repro.tcp.options import TcpOptions
from repro.tcp.rtt import RttEstimator
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    TCP_HEADER_BYTES,
    Segment,
    acquire_segment,
)
from repro.tcp.state import TcpState
from repro.tcp.trace import NULL_TRACE, ConnectionTrace
from repro.util.intervals import IntervalSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lsl.core.events import ProtocolObserver
    from repro.tcp.sockets import TcpStack

# Resolved on first attach_cc_observer: importing repro.lsl.core at
# module scope would cycle through repro.lsl -> repro.tcp when the tcp
# package is imported first.
_emit: Optional[Callable[..., None]] = None


class TcpError(RuntimeError):
    """Base class for TCP-level errors delivered to the application."""


class ConnectionReset(TcpError):
    """Peer sent RST."""


class ConnectionTimeout(TcpError):
    """Too many consecutive retransmission timeouts."""


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_host: str,
        remote_port: int,
        options: TcpOptions,
        trace: Optional[ConnectionTrace] = None,
    ) -> None:
        self.stack = stack
        self.net = stack.net
        self.sim = stack.net.sim
        self.options = options
        # hot-path caches: read once per segment otherwise
        self._mss = options.mss
        self._sack_enabled = options.sack
        self._delayed_ack = options.delayed_ack
        self._delack_timeout = options.delayed_ack_timeout
        # Node.send is just _forward; bind past the extra frame
        self._host_send = stack.host._forward
        self.local_host = stack.host.name
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port

        self.state = TcpState.CLOSED

        # sequence variables (absolute sequence space)
        self.iss = stack.next_iss()
        self.irs = 0
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_max = self.iss  # highest seq ever dispatched (go-back-N aware)
        self.rcv_nxt = 0

        self.send_buffer = SendBuffer(options.send_buffer)
        self.recv_buffer = ReceiveBuffer(options.recv_buffer)
        self.cc = make_congestion_control(
            options.congestion_control,
            options.mss,
            options.initial_cwnd_bytes,
            options.initial_ssthresh,
        )
        self.rtt = RttEstimator(options.initial_rto, options.min_rto, options.max_rto)
        self.peer_window = options.mss  # until first real advertisement

        # loss recovery state
        self.dupacks = 0
        self.in_recovery = False
        self.recover = self.iss
        # SACK scoreboard (absolute sequence space)
        self.sacked = IntervalSet()
        self._recovery_rtx = IntervalSet()  # ranges resent this recovery

        # Karn timing: one in-flight sample at a time
        self._timing_seq = -1
        self._timing_sent_at = 0.0

        # FIN bookkeeping
        self._fin_pending = False  # app closed; FIN not yet sent
        self._fin_seq: Optional[int] = None  # seq consumed by our FIN
        self._peer_fin_seq: Optional[int] = None  # seq of peer FIN (payload end)
        self._peer_fin_done = False

        # timers
        self.rto_timer = Timer(self.sim, self._on_rto, name=f"{self!r}-rto")
        self.delack_timer = Timer(self.sim, self._on_delack, name=f"{self!r}-delack")
        self.persist_timer = Timer(self.sim, self._on_persist, name=f"{self!r}-persist")
        self.time_wait_timer = Timer(self.sim, self._on_time_wait, name=f"{self!r}-tw")
        self._persist_backoff = 1.0
        self._retries = 0

        # delayed-ACK state
        self._segs_since_ack = 0
        self._last_advertised_window = options.recv_buffer

        # application callbacks (wired by SimSocket)
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_peer_fin: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[Optional[Exception]], None]] = None

        self.trace = trace if trace is not None else NULL_TRACE
        self._traced = trace is not None
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self._error: Optional[Exception] = None

        # telemetry: one enabled-flag branch per hot-path site. The
        # sublink span (set by the LSL layer) parents recovery-epoch
        # spans so retransmission episodes nest inside their sublink.
        self.telemetry = stack.net.telemetry
        self.telemetry_span = None
        self._recovery_span = None
        self._rto_span = None

        # congestion-state annotation: an optional ProtocolEvent observer
        # (the same observer plane the sans-I/O core uses) receives
        # cc-open / cc-state / cc-close transitions. Default None keeps
        # the hot paths at one attribute-load + branch per site.
        self.cc_observer: Optional[ProtocolObserver] = None
        self.cc_session = ""
        self._cc_state = "connecting"

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def flight_size(self) -> int:
        """Unacknowledged sequence space."""
        return self.snd_nxt - self.snd_una

    @property
    def send_stream_base(self) -> int:
        """Sequence number of stream offset 0."""
        return self.iss + 1

    @property
    def recv_stream_base(self) -> int:
        return self.irs + 1

    @property
    def usable_window(self) -> int:
        win = min(int(self.cc.cwnd), self.peer_window)
        return max(0, win - self.flight_size)

    @property
    def stream_bytes_sent(self) -> int:
        """Stream offset of snd_nxt (data bytes dispatched at least once)."""
        n = self.snd_nxt - self.send_stream_base
        if self._fin_seq is not None and self.snd_nxt > self._fin_seq:
            n -= 1
        return max(0, n)

    # ------------------------------------------------------------------
    # congestion-state annotation
    # ------------------------------------------------------------------

    def attach_cc_observer(self, observer: ProtocolObserver, session: str) -> None:
        """Start reporting congestion-state transitions to ``observer``.

        Emits ``cc-open`` at the current sim instant (drivers attach at
        connect time, so the open marks the start of the sublink's
        active span) and ``cc-state`` / ``cc-close`` afterwards.
        """
        global _emit
        if _emit is None:
            from repro.lsl.core.events import emit as _emit_impl

            _emit = _emit_impl
        self.cc_observer = observer
        self.cc_session = session
        self._cc_state = self._cc_compute_state()
        _emit(
            observer,
            "cc-open",
            session,
            conn=self._cc_conn_label(),
            t=self.sim.now,
            state=self._cc_state,
            cwnd=int(self.cc.cwnd),
            mss=self.options.mss,
        )

    def _cc_conn_label(self) -> str:
        return (
            f"{self.local_host}:{self.local_port}->"
            f"{self.remote_host}:{self.remote_port}"
        )

    def _cc_compute_state(self) -> str:
        """Classify what currently limits (or drives) this sender.

        Priority order matters: an RTO-stalled sender is also "in"
        slow start after the backoff reset, but the stall is the story.
        ``zero-window`` (reported downstream as relay-buffer-limited)
        requires data waiting — a closed window with nothing to send is
        merely app-limited.
        """
        if self.state in (
            TcpState.CLOSED,
            TcpState.LISTEN,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
        ):
            return "connecting"
        if self._retries > 0:
            return "rto-stalled"
        if self.in_recovery:
            return "fast-recovery"
        unsent = self.send_buffer.end - (self.snd_nxt - self.send_stream_base)
        if self.peer_window == 0 and unsent > 0:
            return "zero-window"
        if unsent <= 0 and self.flight_size == 0 and not self._fin_pending:
            return "app-limited"
        if self.cc.in_slow_start:
            return "slow-start"
        return "congestion-avoidance"

    def _cc_update(self) -> None:
        """Emit a ``cc-state`` event when the classification changed."""
        state = self._cc_compute_state()
        if state == self._cc_state:
            return
        prev, self._cc_state = self._cc_state, state
        assert _emit is not None  # set when the observer was attached
        _emit(
            self.cc_observer,
            "cc-state",
            self.cc_session,
            conn=self._cc_conn_label(),
            t=self.sim.now,
            prev=prev,
            state=state,
            cwnd=int(self.cc.cwnd),
            flight=self.flight_size,
        )

    def _cc_close(self) -> None:
        observer, self.cc_observer = self.cc_observer, None
        assert _emit is not None  # set when the observer was attached
        _emit(
            observer,
            "cc-close",
            self.cc_session,
            conn=self._cc_conn_label(),
            t=self.sim.now,
            state=self._cc_state,
            bytes_sent=self.stream_bytes_sent,
        )

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------

    def open_active(self) -> None:
        """Client side: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise TcpError(f"cannot connect in state {self.state}")
        self.state = TcpState.SYN_SENT
        self.snd_nxt = self.iss + 1
        self.snd_max = max(self.snd_max, self.snd_nxt)
        self._send_segment(FLAG_SYN, seq=self.iss)
        self.rto_timer.restart(self.rtt.rto)

    def open_passive(self, syn: Segment) -> None:
        """Server side: a listener received ``syn`` and spawned us."""
        if self.state is not TcpState.CLOSED:
            raise TcpError(f"cannot accept in state {self.state}")
        self.irs = syn.seq
        self.rcv_nxt = syn.seq + 1
        self.recv_buffer.rcv_nxt = 0
        self.peer_window = syn.window
        self.state = TcpState.SYN_RCVD
        self.snd_nxt = self.iss + 1
        self.snd_max = max(self.snd_max, self.snd_nxt)
        self._send_segment(FLAG_SYN | FLAG_ACK, seq=self.iss)
        self.rto_timer.restart(self.rtt.rto)

    # ------------------------------------------------------------------
    # application sending
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> int:
        """Queue real bytes; returns bytes accepted (may be < len)."""
        self._check_can_send()
        accept = min(len(data), self.send_buffer.free_space)
        if accept > 0:
            self.send_buffer.write(data[:accept] if accept < len(data) else data)
            self._try_send()
            if self.cc_observer is not None:
                self._cc_update()
        return accept

    def send_virtual(self, nbytes: int) -> int:
        """Queue virtual (length-only) bytes; returns bytes accepted."""
        self._check_can_send()
        sb = self.send_buffer
        free = sb.capacity - (sb.end - sb.start)  # inline free_space
        accept = nbytes if nbytes < free else free
        if accept > 0:
            sb.write_virtual(accept)
            self._try_send()
            if self.cc_observer is not None:
                self._cc_update()
        return accept

    def _check_can_send(self) -> None:
        if self._fin_pending or self._fin_seq is not None:
            raise TcpError("send after close")
        if self.state is TcpState.ESTABLISHED:
            return  # the per-write common case: no more tests needed
        if self.state in (TcpState.CLOSED, TcpState.LISTEN):
            raise TcpError(f"send in state {self.state}")
        if not (
            self.state.can_send_data
            or self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)
        ):
            raise TcpError(f"send in state {self.state}")

    def close(self) -> None:
        """Graceful close: FIN once queued data drains."""
        if self._fin_pending or self._fin_seq is not None:
            return
        if self.state in (TcpState.CLOSED, TcpState.LISTEN):
            self._finish_close(None)
            return
        self._fin_pending = True
        self._try_send()
        if self.cc_observer is not None:
            self._cc_update()

    def abort(self, error: Optional[Exception] = None) -> None:
        """Hard close: RST to peer, drop all state."""
        if self.state not in (TcpState.CLOSED, TcpState.LISTEN):
            self._send_segment(FLAG_RST | FLAG_ACK, seq=self.snd_nxt)
        self._finish_close(error)

    # ------------------------------------------------------------------
    # application receiving
    # ------------------------------------------------------------------

    def recv(self, max_bytes: Optional[int] = None):
        """Read in-order stream chunks; may open the advertised window."""
        chunks = self.recv_buffer.read(max_bytes)
        if chunks:
            self._maybe_send_window_update()
        return chunks

    @property
    def readable_bytes(self) -> int:
        return self.recv_buffer.readable_bytes

    @property
    def peer_closed(self) -> bool:
        """True once the peer's FIN has been processed (stream EOF)."""
        return self._peer_fin_done

    def _maybe_send_window_update(self) -> None:
        """After an app read, tell a stalled sender the window reopened."""
        mss = self._mss
        if self._last_advertised_window >= mss:
            return  # window never looked closed: nothing to announce
        win = self.recv_buffer.advertised_window
        if (
            win >= max(mss, self.recv_buffer.capacity // 4)
            and self.state.can_receive_data
        ):
            self._send_ack()

    # ------------------------------------------------------------------
    # segment transmission
    # ------------------------------------------------------------------

    def _send_segment(
        self,
        flags: int,
        seq: int,
        length: int = 0,
        payload: Optional[bytes] = None,
        retransmit: bool = False,
    ) -> None:
        recv_buffer = self.recv_buffer
        # inline recv_buffer.advertised_window (hot: once per segment)
        window = recv_buffer.capacity - recv_buffer._ready_bytes
        if window < 0:
            window = 0
        seg = acquire_segment(
            self.local_port,
            self.remote_port,
            seq,
            self.rcv_nxt if (flags & FLAG_ACK) else 0,
            flags,
            window,
            length,
            payload,
        )
        seg.is_retransmit = retransmit
        if (
            self._sack_enabled
            and (flags & FLAG_ACK)
            and not (flags & FLAG_RST)
            # cheap emptiness test first: in-order traffic never has
            # out-of-order coverage, so skip the block assembly
            and recv_buffer._ooo_ranges
        ):
            blocks = recv_buffer.sack_blocks(self.options.max_sack_blocks)
            if blocks:
                base = self.recv_stream_base
                seg.sack_blocks = tuple((s + base, e + base) for s, e in blocks)
        if flags & FLAG_ACK:
            self._segs_since_ack = 0
            # lazy Timer.stop, inlined: one store per outgoing ACK
            self.delack_timer._deadline = None
            self._last_advertised_window = window
        # inline seg.wire_bytes (hot: once per segment); the sack branch
        # above is the only place blocks get attached
        wire = TCP_HEADER_BYTES + length + IP_HEADER_BYTES
        blocks = seg.sack_blocks
        if blocks:
            wire += 2 + 8 * len(blocks)
        pkt = acquire_packet(
            self.local_host,
            self.remote_host,
            PROTO_TCP,
            seg,
            wire,
        )
        if length > 0:
            if self._traced:
                self.trace.data_send(
                    self.sim.now, seq - self.send_stream_base, length, retransmit
                )
            if retransmit and self.telemetry.enabled:
                self.telemetry.metrics.counter("tcp.retransmit_segments").inc()
        elif flags & (FLAG_SYN | FLAG_FIN | FLAG_RST):
            if self._traced:
                self.trace.ctl_send(self.sim.now, "ctl")
        self._host_send(pkt)

    def _send_ack(self) -> None:
        self._send_segment(FLAG_ACK, seq=self.snd_nxt)

    def _try_send(self) -> None:
        """Dispatch as much new data as window allows; then maybe FIN."""
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
            TcpState.FIN_WAIT_1,
            TcpState.CLOSING,
            TcpState.LAST_ACK,
        ):
            return
        base = self.iss + 1  # send_stream_base, sans the property call
        sent_any = False
        # The loop touches no state that can change underneath it —
        # segment transmission only *schedules* link events, nothing is
        # delivered synchronously — so hot fields live in locals and the
        # usable-window recomputation becomes a running decrement.
        send_buffer = self.send_buffer
        mss = self._mss
        fin_seq = self._fin_seq
        snd_nxt = self.snd_nxt
        snd_max = self.snd_max
        window = None  # computed on first use: receivers never get there
        while True:
            offset = snd_nxt - base
            if fin_seq is not None and snd_nxt > fin_seq:
                break  # FIN already sent: nothing beyond it
            avail = send_buffer.end - offset
            if avail <= 0:
                # go-back-N may have pulled snd_nxt back onto an already
                # sent but unacked FIN: it must be retransmitted too
                if (
                    fin_seq is not None
                    and snd_nxt == fin_seq
                    and self.snd_una <= fin_seq
                ):
                    self._send_segment(
                        FLAG_FIN | FLAG_ACK, seq=fin_seq, retransmit=True
                    )
                    snd_nxt += 1
                    sent_any = True
                break
            if window is None:
                window = (
                    min(int(self.cc.cwnd), self.peer_window)
                    - (snd_nxt - self.snd_una)
                )
            if window <= 0:
                break
            take = avail if avail < window else window
            if take > mss:
                take = mss
            chunk = send_buffer.payload_for(offset, take)
            is_rtx = snd_nxt < snd_max
            if not is_rtx and self._timing_seq < 0:
                self._timing_seq = snd_nxt
                self._timing_sent_at = self.sim.now
            self._send_segment(
                FLAG_ACK,
                seq=snd_nxt,
                length=chunk.length,
                payload=chunk.data,
                retransmit=is_rtx,
            )
            snd_nxt += chunk.length
            window -= chunk.length
            if snd_nxt > snd_max:
                snd_max = snd_nxt
            sent_any = True
        self.snd_nxt = snd_nxt
        self.snd_max = snd_max
        # FIN when app closed and everything queued has been dispatched
        if (
            self._fin_pending
            and self._fin_seq is None
            and (self.snd_nxt - base) >= self.send_buffer.end
            and self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
        ):
            self._fin_seq = self.snd_nxt
            self._send_segment(FLAG_FIN | FLAG_ACK, seq=self.snd_nxt)
            self.snd_nxt += 1
            if self.snd_nxt > self.snd_max:
                self.snd_max = self.snd_nxt
            self._fin_pending = False
            self.state = (
                TcpState.FIN_WAIT_1
                if self.state is TcpState.ESTABLISHED
                else TcpState.LAST_ACK
            )
            sent_any = True
        if sent_any:
            if not self.rto_timer.armed:
                self.rto_timer.restart(self.rtt.rto)
            # lazy Timer.stop, inlined (runs per dispatched burst)
            self.persist_timer._deadline = None
            self._persist_backoff = 1.0
        elif (
            self.peer_window == 0
            and self.flight_size == 0
            and (self.send_buffer.end - (self.snd_nxt - base)) > 0
            and not self.persist_timer.armed
        ):
            self.persist_timer.restart(max(self.rtt.rto, 0.5) * self._persist_backoff)

    def _start_timing(self, seq: int) -> None:
        if self._timing_seq < 0:
            self._timing_seq = seq
            self._timing_sent_at = self.sim.now

    def _retransmit_head(self) -> None:
        """Resend one segment starting at snd_una (data, SYN or FIN)."""
        if self.state is TcpState.SYN_SENT:
            self._send_segment(FLAG_SYN, seq=self.iss, retransmit=True)
            return
        if self.state is TcpState.SYN_RCVD:
            self._send_segment(FLAG_SYN | FLAG_ACK, seq=self.iss, retransmit=True)
            return
        if self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send_segment(FLAG_FIN | FLAG_ACK, seq=self._fin_seq, retransmit=True)
            return
        base = self.send_stream_base
        offset = self.snd_una - base
        avail = self.send_buffer.end - offset
        if avail <= 0:
            return
        # re-packetization up to one MSS is fine, but never push more
        # than the peer advertises (a closed window admits only the
        # 1-byte probe a real stack would send)
        take = min(avail, self.options.mss, max(self.peer_window, 1))
        chunk = self.send_buffer.payload_for(offset, take)
        # Karn: a retransmission below the timed segment invalidates it
        if self._timing_seq >= 0 and self.snd_una <= self._timing_seq:
            self._timing_seq = -1
        self._send_segment(
            FLAG_ACK,
            seq=self.snd_una,
            length=chunk.length,
            payload=chunk.data,
            retransmit=True,
        )
        if self.snd_una + chunk.length > self.snd_nxt:
            self.snd_nxt = self.snd_una + chunk.length
            if self.snd_nxt > self.snd_max:
                self.snd_max = self.snd_nxt

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _on_rto(self) -> None:
        self._retries += 1
        if self._retries > self.options.max_retries:
            self.abort(ConnectionTimeout(f"{self._retries} consecutive RTOs"))
            return
        self.net.logger.log(str(self), "rto", self.snd_una)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("tcp.rto").inc()
            self._tel_end_recovery_span()
            if self._rto_span is None:
                self._rto_span = self.telemetry.spans.begin(
                    "rto-backoff", cat="tcp", parent=self.telemetry_span,
                    args={"snd_una": self.snd_una - self.send_stream_base},
                )
        self.rtt.back_off()
        if self.state not in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            self.cc.on_timeout(self.flight_size)
            self.in_recovery = False
            self.dupacks = 0
            self.recover = self.snd_max
            self.sacked.clear()  # RFC 2018: assume reneging after RTO
            self._recovery_rtx.clear()
            # go-back-N: everything unacked will be resent in order
            self.snd_nxt = self.snd_una
        self._timing_seq = -1
        self._retransmit_head()
        self.rto_timer.restart(self.rtt.rto)
        if self.cc_observer is not None:
            self._cc_update()

    def _on_delack(self) -> None:
        if self._segs_since_ack > 0 and self.state is not TcpState.CLOSED:
            self._send_ack()

    def _on_persist(self) -> None:
        """Zero-window probe: one byte beyond the window."""
        base = self.send_stream_base
        offset = self.snd_nxt - base
        if (
            self.peer_window > 0
            or offset >= self.send_buffer.end
            or self.state is TcpState.CLOSED
        ):
            return
        chunk = self.send_buffer.payload_for(offset, 1)
        self._send_segment(
            FLAG_ACK, seq=self.snd_nxt, length=chunk.length, payload=chunk.data
        )
        self.snd_nxt += chunk.length
        if self.snd_nxt > self.snd_max:
            self.snd_max = self.snd_nxt
        if not self.rto_timer.armed:
            self.rto_timer.restart(self.rtt.rto)
        self._persist_backoff = min(self._persist_backoff * 2.0, 60.0)
        self.persist_timer.restart(max(self.rtt.rto, 0.5) * self._persist_backoff)
        if self.cc_observer is not None:
            self._cc_update()

    def _on_time_wait(self) -> None:
        self._finish_close(None)

    # ------------------------------------------------------------------
    # segment reception (entry point from the stack demux)
    # ------------------------------------------------------------------

    def segment_arrived(self, seg: Segment) -> None:
        state = self.state
        if state is TcpState.CLOSED:
            return
        flags = seg.flags  # test flag bits directly: the syn/fin/...
        # properties cost a Python call each and this runs per segment
        if flags & FLAG_RST:
            self._handle_rst(seg)
            return
        if state is TcpState.SYN_SENT:
            self._handle_syn_sent(seg)
            return
        if state is TcpState.SYN_RCVD:
            self._handle_syn_rcvd(seg)
            # fall through: the ACK completing the handshake may carry data
            if self.state not in (
                TcpState.ESTABLISHED,
                TcpState.FIN_WAIT_1,
                TcpState.CLOSE_WAIT,
            ):
                return
            if seg.length == 0 and not flags & FLAG_FIN:
                return
        if flags & FLAG_SYN:
            # duplicate SYN or SYN|ACK in a synchronized state: the peer
            # lost our handshake ACK. Re-ACK so it can proceed.
            self._send_ack()
            return
        if flags & FLAG_ACK:
            self._process_ack(seg)
            if self.state is TcpState.CLOSED:
                return
        if seg.length > 0 or flags & FLAG_FIN:
            self._process_payload(seg)
        # opportunistically push data freed/unblocked by this segment —
        # unless there is provably nothing to push (a pure receiver gets
        # here once per data segment): no unsent bytes, no FIN pending,
        # no sent FIN that go-back-N might need to resend
        if (
            self.send_buffer.end > self.snd_nxt - self.iss - 1
            or self._fin_pending
            or self._fin_seq is not None
        ):
            self._try_send()
        if self.cc_observer is not None:
            self._cc_update()

    # -- handshake states ---------------------------------------------------

    def _handle_syn_sent(self, seg: Segment) -> None:
        if not seg.syn:
            return
        if seg.ack_flag and seg.ack != self.iss + 1:
            self._send_segment(FLAG_RST, seq=seg.ack)
            return
        self.irs = seg.seq
        self.rcv_nxt = seg.seq + 1
        self.recv_buffer.rcv_nxt = 0
        self.peer_window = seg.window
        if seg.ack_flag:
            self.snd_una = seg.ack
            self._retries = 0
            self.rto_timer.stop()
            self.state = TcpState.ESTABLISHED
            self.established_at = self.sim.now
            self._send_ack()
            if self.on_connected:
                self.on_connected()
            self._try_send()
            if self.cc_observer is not None:
                self._cc_update()
        else:  # simultaneous open (unused in our scenarios, but correct)
            self.state = TcpState.SYN_RCVD
            self._send_segment(FLAG_SYN | FLAG_ACK, seq=self.iss, retransmit=True)

    def _handle_syn_rcvd(self, seg: Segment) -> None:
        if seg.syn and not seg.ack_flag:
            # duplicate SYN: retransmit SYN|ACK
            self._send_segment(FLAG_SYN | FLAG_ACK, seq=self.iss, retransmit=True)
            return
        if seg.ack_flag and seg.ack >= self.iss + 1:
            self.snd_una = max(self.snd_una, self.iss + 1)
            self.peer_window = seg.window
            self._retries = 0
            self.rto_timer.stop()
            self.state = TcpState.ESTABLISHED
            self.established_at = self.sim.now
            self.stack.connection_established(self)
            if self.on_connected:
                self.on_connected()
            if self.cc_observer is not None:
                self._cc_update()

    # -- RST ------------------------------------------------------------------

    def _handle_rst(self, seg: Segment) -> None:
        # minimal validity check: in-window or handshake-matching
        if self.state is TcpState.SYN_SENT and (
            not seg.ack_flag or seg.ack != self.iss + 1
        ):
            return
        self._finish_close(ConnectionReset(f"RST from {self.remote_host}"))

    # -- ACK processing ----------------------------------------------------------

    def _process_ack(self, seg: Segment) -> None:
        ack = seg.ack
        snd_una = self.snd_una  # pre-_process_new_ack value, see below
        if self._traced:
            self.trace.ack_recv(self.sim.now, max(0, ack - self.send_stream_base))
        if ack > self.snd_max:
            # acks something we never sent; RFC 793 says re-ACK and drop
            self._send_ack()
            return
        if ack > self.snd_nxt:
            # go-back-N pulled snd_nxt back and the receiver's cumulative
            # ACK (fed by out-of-order data it already held) jumped past
            # it: everything up to ack is truly delivered
            self.snd_nxt = ack
        if self._sack_enabled and seg.sack_blocks:
            for s_blk, e_blk in seg.sack_blocks:
                lo = max(s_blk, snd_una)
                if lo < e_blk:
                    self.sacked.add(lo, min(e_blk, self.snd_max))
        if ack > snd_una:
            self._process_new_ack(seg, ack)
        elif (
            ack == snd_una
            and seg.length == 0
            and not seg.flags & (FLAG_SYN | FLAG_FIN)
            and self.snd_nxt > snd_una
        ):
            # Count as a duplicate ACK even if the advertised window
            # moved: a relaying receiver (an LSL depot) legitimately
            # advertises a moving window while dup-ACKing a hole, and
            # requiring an unchanged window would disable fast
            # retransmit exactly when the paper's system needs it.
            self.peer_window = seg.window
            self._process_dupack()
        if ack >= self.snd_una:
            self.peer_window = seg.window
        if self.peer_window > 0:
            # lazy Timer.stop, inlined (per-ACK path)
            self.persist_timer._deadline = None
            self._persist_backoff = 1.0

    def _process_new_ack(self, seg: Segment, ack: int) -> None:
        bytes_acked = ack - self.snd_una
        self._retries = 0
        if self._rto_span is not None:
            # forward progress resumed: the RTO backoff epoch is over
            self.telemetry.spans.end(self._rto_span)
            self._rto_span = None

        # Karn-valid RTT sample: the timed segment is fully acked
        if self._timing_seq >= 0 and ack > self._timing_seq:
            rtt = self.sim.now - self._timing_sent_at
            self.rtt.sample(rtt)
            if self._traced:
                self.trace.rtt_sample(self.sim.now, rtt)
            if self.telemetry.enabled:
                self.telemetry.metrics.histogram(
                    "tcp.rtt_s", unit=1e-6
                ).record(rtt)
            self._timing_seq = -1

        # release the stream bytes covered by this ACK
        data_upto = ack - self.iss - 1  # ack - send_stream_base
        if self._fin_seq is not None and ack > self._fin_seq:
            data_upto -= 1
        if data_upto < 0:
            data_upto = 0
        else:
            end = self.send_buffer.end
            if data_upto > end:
                data_upto = end
        freed = self.send_buffer.release(data_upto)

        if self.in_recovery:
            if ack >= self.recover:
                self.in_recovery = False
                self.dupacks = 0
                self._recovery_rtx.clear()
                self.cc.on_exit_recovery()
                self._tel_end_recovery_span()
            elif self.options.sack:
                # RFC 3517: cwnd holds at ssthresh; the shrinking pipe
                # lets further hole repairs out
                self.snd_una = ack
                self.sacked.discard_below(ack)
                self._recovery_rtx.discard_below(ack)
                self._sack_retransmit()
                self.rto_timer.restart(self.rtt.rto)
            elif self.cc.stays_in_recovery_on_partial_ack:
                # NewReno partial ACK: deflate and retransmit the hole
                self.cc.on_partial_ack(bytes_acked)
                self.snd_una = ack
                self._retransmit_head()
                self.rto_timer.restart(self.rtt.rto)
            else:  # Reno: any new ACK ends recovery
                self.in_recovery = False
                self.dupacks = 0
                self.cc.on_exit_recovery()
                self._tel_end_recovery_span()
        else:
            self.dupacks = 0
            self.cc.on_new_ack(bytes_acked)

        self.snd_una = ack
        self.sacked.discard_below(ack)
        if self._traced:
            self.trace.cwnd_sample(self.sim.now, self.cc.cwnd, self.cc.ssthresh)
        if self.snd_nxt < self.snd_una:  # go-back-N pulled snd_nxt back
            self.snd_nxt = self.snd_una

        # our FIN acknowledged?
        if self._fin_seq is not None and ack > self._fin_seq:
            self._fin_acked()

        # anything dispatched and unacked (including go-back-N territory
        # between snd_nxt and snd_max) keeps the retransmit timer armed
        if self.snd_max > self.snd_una:
            self.rto_timer.restart(self.rtt.rto)
        else:
            self.rto_timer.stop()

        if freed > 0 and self.on_writable and self.send_buffer.free_space > 0:
            self.on_writable()

    def _process_dupack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            if self.options.sack:
                self._sack_retransmit()
            else:
                self.cc.on_dupack_in_recovery()
            return
        if self.dupacks == self.options.dupack_threshold:
            self.cc.on_fast_retransmit(self.flight_size)
            self.recover = self.snd_max
            self.in_recovery = True
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("tcp.fast_retransmit").inc()
                if self._recovery_span is None:
                    self._recovery_span = self.telemetry.spans.begin(
                        "fast-recovery", cat="tcp", parent=self.telemetry_span,
                        args={
                            "snd_una": self.snd_una - self.send_stream_base,
                            "recover": self.recover - self.send_stream_base,
                        },
                    )
            if self.options.sack:
                # SACK pipe accounting replaces Reno window inflation
                self.cc.cwnd = max(self.cc.ssthresh, 2.0 * self.options.mss)
                self._recovery_rtx.clear()
                self._sack_retransmit()
            else:
                self._retransmit_head()
            self.rto_timer.restart(self.rtt.rto)

    def _sack_retransmit(self) -> None:
        """RFC 3517-style recovery: resend scoreboard holes, then new
        data, keeping the estimated pipe under cwnd."""
        if not self.in_recovery:
            return
        una, mss = self.snd_una, self.options.mss
        high = self.sacked.max if self.sacked else una
        sacked_in_win = self.sacked.covered_within(una, self.snd_max)
        # holes below the highest SACK that we have not repaired yet are
        # presumed lost: they are not in the pipe
        lost_unrepaired = 0
        holes = []
        for gs, ge in self.sacked.gaps(una, high):
            for hs, he in self._recovery_rtx.gaps(gs, ge):
                holes.append((hs, he))
                lost_unrepaired += he - hs
        pipe = (self.snd_max - una) - sacked_in_win - lost_unrepaired
        budget = int(self.cc.cwnd) - pipe
        base = self.send_stream_base
        for hs, he in holes:
            while hs < he and budget > 0:
                if self._fin_seq is not None and hs >= self._fin_seq:
                    self._send_segment(
                        FLAG_FIN | FLAG_ACK, seq=self._fin_seq, retransmit=True
                    )
                    self._recovery_rtx.add(hs, hs + 1)
                    budget -= 1
                    hs += 1
                    continue
                take = min(he - hs, mss, self.send_buffer.end - (hs - base))
                if take <= 0:
                    break
                chunk = self.send_buffer.payload_for(hs - base, take)
                if self._timing_seq >= 0 and hs <= self._timing_seq:
                    self._timing_seq = -1
                self._send_segment(
                    FLAG_ACK,
                    seq=hs,
                    length=chunk.length,
                    payload=chunk.data,
                    retransmit=True,
                )
                self._recovery_rtx.add(hs, hs + chunk.length)
                budget -= chunk.length
                hs += chunk.length
            if budget <= 0:
                return
        # holes all repaired: pipe room may admit new data
        while budget > 0:
            offset = self.snd_nxt - base
            if self._fin_seq is not None and self.snd_nxt > self._fin_seq:
                return
            avail = self.send_buffer.end - offset
            if avail <= 0:
                return
            if self.snd_nxt - una >= self.peer_window:
                return
            take = min(avail, budget, mss)
            chunk = self.send_buffer.payload_for(offset, take)
            self._send_segment(
                FLAG_ACK, seq=self.snd_nxt, length=chunk.length, payload=chunk.data
            )
            self.snd_nxt += chunk.length
            if self.snd_nxt > self.snd_max:
                self.snd_max = self.snd_nxt
            budget -= chunk.length

    def _tel_end_recovery_span(self) -> None:
        if self._recovery_span is not None:
            self.telemetry.spans.end(self._recovery_span)
            self._recovery_span = None

    def _fin_acked(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self.state = TcpState.TIME_WAIT
            self.time_wait_timer.restart(self.options.time_wait_s)
        elif self.state is TcpState.LAST_ACK:
            self._finish_close(None)

    # -- payload / FIN processing --------------------------------------------------

    def _process_payload(self, seg: Segment) -> None:
        fin = seg.flags & FLAG_FIN
        if fin:
            self._peer_fin_seq = seg.seq + seg.length
        advanced = 0
        if seg.length > 0:
            state = self.state
            if (
                state is not TcpState.ESTABLISHED  # common case: skip the rest
                and not state.can_receive_data
                and state not in (
                    TcpState.CLOSING,
                    TcpState.TIME_WAIT,
                    TcpState.CLOSE_WAIT,
                    TcpState.LAST_ACK,
                )
            ):
                return
            recv_buffer = self.recv_buffer
            advanced = recv_buffer.segment_arrived(
                seg.seq - self.recv_stream_base, seg.length, seg.payload
            )
            # rcv_nxt is monotonic: the buffer only tracks data bytes, so
            # once the peer's FIN has been counted (+1) a retransmitted
            # data segment must not regress rcv_nxt below it.
            nxt = self.recv_stream_base + recv_buffer.rcv_nxt
            if nxt > self.rcv_nxt:
                self.rcv_nxt = nxt

        # peer FIN becomes processable once all data before it arrived
        fin_now = (
            self._peer_fin_seq is not None
            and not self._peer_fin_done
            and self.rcv_nxt >= self._peer_fin_seq
        )
        if fin_now:
            self.rcv_nxt = self._peer_fin_seq + 1
            self._peer_fin_done = True
            self._send_ack()
            self._advance_state_on_peer_fin()
            if self.on_readable and self.recv_buffer.readable_bytes > 0:
                self.on_readable()
            if self.on_peer_fin:
                self.on_peer_fin()
            return

        if seg.length == 0:
            if fin and self._peer_fin_done:
                # duplicate FIN: our ACK of it was lost, re-ACK so the
                # peer's closer can make progress
                self._send_ack()
            return

        if advanced == 0:
            # out-of-order or duplicate: immediate dupACK (RFC 2581)
            self._send_ack()
        else:
            if self.on_readable:
                self.on_readable()
            if self._delayed_ack:
                self._segs_since_ack += 1
                if self._segs_since_ack >= 2:
                    self._send_ack()
                elif not self.delack_timer.armed:
                    self.delack_timer.restart(self._delack_timeout)
            else:
                self._send_ack()

    def _advance_state_on_peer_fin(self) -> None:
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT_1:
            # our FIN not yet acked: simultaneous close
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self.state = TcpState.TIME_WAIT
            self.time_wait_timer.restart(self.options.time_wait_s)

    # ------------------------------------------------------------------
    # shutdown plumbing
    # ------------------------------------------------------------------

    def _finish_close(self, error: Optional[Exception]) -> None:
        already_closed = self.state is TcpState.CLOSED and self.closed_at is not None
        self.state = TcpState.CLOSED
        if self.closed_at is None:
            self.closed_at = self.sim.now
        self._error = error
        self.rto_timer.stop()
        self.delack_timer.stop()
        self.persist_timer.stop()
        self.time_wait_timer.stop()
        self._tel_end_recovery_span()
        if self._rto_span is not None:
            self.telemetry.spans.end(self._rto_span)
            self._rto_span = None
        if self.cc_observer is not None:
            self._cc_close()
        self.stack.connection_closed(self)
        if not already_closed and self.on_close:
            cb, self.on_close = self.on_close, None
            cb(error)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TcpConnection {self.local_host}:{self.local_port}->"
            f"{self.remote_host}:{self.remote_port} {self.state.value}>"
        )
