"""TCP connection states (RFC 793 state machine)."""

from __future__ import annotations

import enum


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    @property
    def can_send_data(self) -> bool:
        """States in which the local side may still queue new data."""
        return self in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    @property
    def can_receive_data(self) -> bool:
        """States in which incoming data segments are still accepted."""
        return self in (
            TcpState.ESTABLISHED,
            TcpState.FIN_WAIT_1,
            TcpState.FIN_WAIT_2,
        )

    @property
    def is_terminal(self) -> bool:
        return self is TcpState.CLOSED
