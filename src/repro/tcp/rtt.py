"""RTT estimation and RTO computation (RFC 2988 / Jacobson–Karn).

The estimator keeps the smoothed RTT and variance::

    first sample:  srtt = R, rttvar = R/2
    thereafter:    rttvar = (1-b)*rttvar + b*|srtt - R|   (b = 1/4)
                   srtt   = (1-a)*srtt  + a*R             (a = 1/8)
    rto = clamp(srtt + max(G, 4*rttvar))

Karn's algorithm is applied by the caller: samples are only taken for
segments transmitted exactly once (see
:meth:`repro.tcp.connection.TcpConnection._process_ack`). Backoff
doubles the RTO on each retransmission timeout and is cleared by the
next valid sample.
"""

from __future__ import annotations

ALPHA = 0.125
BETA = 0.25
#: Clock granularity G in the RFC 2988 formula (Linux 2.4: 10 ms ticks).
CLOCK_GRANULARITY = 0.010


class RttEstimator:
    """Tracks srtt/rttvar and yields the current RTO."""

    __slots__ = ("srtt", "rttvar", "_rto", "min_rto", "max_rto", "samples", "_backoff")

    def __init__(
        self, initial_rto: float = 3.0, min_rto: float = 0.2, max_rto: float = 120.0
    ) -> None:
        self.srtt: float = -1.0  # negative = no sample yet
        self.rttvar: float = 0.0
        self._rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.samples: int = 0
        self._backoff = 1

    @property
    def rto(self) -> float:
        """Current retransmission timeout including backoff."""
        return min(self._rto * self._backoff, self.max_rto)

    @property
    def has_sample(self) -> bool:
        return self.samples > 0

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds). Resets RTO backoff."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt!r}")
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = abs(self.srtt - rtt)
            self.rttvar = (1.0 - BETA) * self.rttvar + BETA * err
            self.srtt = (1.0 - ALPHA) * self.srtt + ALPHA * rtt
        self.samples += 1
        self._backoff = 1
        self._rto = self._clamp(self.srtt + max(CLOCK_GRANULARITY, 4.0 * self.rttvar))

    def back_off(self) -> None:
        """Double the effective RTO (called on retransmission timeout)."""
        self._backoff = min(self._backoff * 2, 1 << 16)

    @property
    def backoff_count(self) -> int:
        """Number of doublings currently applied (0 when fresh)."""
        return self._backoff.bit_length() - 1

    def _clamp(self, rto: float) -> float:
        return max(self.min_rto, min(rto, self.max_rto))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.samples == 0:
            return f"<RttEstimator no-samples rto={self.rto:.3f}>"
        return (
            f"<RttEstimator srtt={self.srtt*1e3:.1f}ms "
            f"rttvar={self.rttvar*1e3:.1f}ms rto={self.rto:.3f}s n={self.samples}>"
        )
