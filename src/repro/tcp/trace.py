"""Per-connection packet tracing.

The paper captures ``tcpdump`` traces *at the sending host* and derives
(a) per-connection RTT from ACK timings and (b) sequence-number-growth
curves. :class:`ConnectionTrace` records the equivalent events straight
from the TCP connection:

- ``data-send`` — a data segment left the host (seq, length, retransmit flag),
- ``ack-recv`` — a cumulative ACK arrived (ack value),
- ``rtt-sample`` — a Karn-valid RTT measurement,
- ``ctl-send`` — SYN/FIN/RST segments (for connection-setup accounting),
- ``cwnd-sample`` — congestion-window value after an ACK, with the
  current ssthresh alongside in ``value2`` so the analysis layer can
  tell slow start (cwnd < ssthresh) from congestion avoidance (opt-in
  via ``ConnectionTrace(sample_cwnd=True)``; off by default because
  bulk runs generate one sample per ACK).

Records carry absolute sim time; the analysis layer normalizes.

``max_events`` bounds memory with ring semantics: only the newest
``max_events`` records are kept (``total_events`` still counts all),
which is what lets long fault-injection runs leave tracing on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One trace record.

    A ``NamedTuple`` rather than a frozen dataclass: traced bulk runs
    create one record per segment/ACK (hundreds of thousands per 64 MB
    transfer), and tuple construction is several times cheaper than a
    frozen dataclass's ``object.__setattr__`` dance.
    """

    time: float
    kind: str  # "data-send" | "ack-recv" | "rtt-sample" | "ctl-send"
    seq: int = 0  # relative sequence/ack value (stream offset)
    length: int = 0
    retransmit: bool = False
    value: float = 0.0  # rtt for "rtt-sample", cwnd for "cwnd-sample"
    value2: float = 0.0  # ssthresh for "cwnd-sample"


@dataclass
class ConnectionTrace:
    """Trace of one TCP connection, sender side."""

    label: str = ""
    events: List[TraceEvent] = field(default_factory=list)
    #: When True the connection records its cwnd after every new ACK.
    sample_cwnd: bool = False
    #: Keep only the newest N events (None = unbounded).
    max_events: Optional[int] = None
    #: Events recorded over the connection's lifetime (ring-independent).
    total_events: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None:
            if self.max_events <= 0:
                raise ValueError("max_events must be positive")
            self.events = deque(self.events, maxlen=self.max_events)

    def _append(self, event: TraceEvent) -> None:
        self.total_events += 1
        self.events.append(event)

    # -- recording (called by TcpConnection) ------------------------------

    def data_send(self, time: float, seq: int, length: int, retransmit: bool) -> None:
        self._append(TraceEvent(time, "data-send", seq, length, retransmit))

    def ack_recv(self, time: float, ack: int) -> None:
        self._append(TraceEvent(time, "ack-recv", ack))

    def rtt_sample(self, time: float, rtt: float) -> None:
        self._append(TraceEvent(time, "rtt-sample", value=rtt))

    def cwnd_sample(self, time: float, cwnd: float, ssthresh: float = 0.0) -> None:
        if self.sample_cwnd:
            self._append(
                TraceEvent(time, "cwnd-sample", value=cwnd, value2=ssthresh)
            )

    def ctl_send(self, time: float, what: str) -> None:
        self._append(TraceEvent(time, "ctl-send", length=0, retransmit=False, seq=0, value=0.0))

    # -- queries (used by repro.analysis) -----------------------------------

    @property
    def evicted(self) -> int:
        """Events dropped by the ring (0 when unbounded)."""
        return self.total_events - len(self.events)

    def data_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "data-send"]

    def retransmit_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "data-send" and e.retransmit)

    def rtt_samples(self) -> List[float]:
        return [e.value for e in self.events if e.kind == "rtt-sample"]

    def cwnd_curve(self) -> List[tuple]:
        """(time, cwnd bytes) samples (requires ``sample_cwnd=True``)."""
        return [
            (e.time, e.value) for e in self.events if e.kind == "cwnd-sample"
        ]

    def cwnd_ssthresh_curve(self) -> List[tuple]:
        """(time, cwnd, ssthresh) samples — lets seq-growth figures
        annotate slow-start (cwnd < ssthresh) vs avoidance phases."""
        return [
            (e.time, e.value, e.value2)
            for e in self.events
            if e.kind == "cwnd-sample"
        ]

    def slow_start_intervals(self) -> List[tuple]:
        """(start, end) sim-time intervals where cwnd < ssthresh,
        derived from the cwnd-sample stream."""
        out: List[tuple] = []
        start: Optional[float] = None
        last_t: Optional[float] = None
        for t, cwnd, ssthresh in self.cwnd_ssthresh_curve():
            in_ss = cwnd < ssthresh
            if in_ss and start is None:
                start = t
            elif not in_ss and start is not None:
                out.append((start, t))
                start = None
            last_t = t
        if start is not None and last_t is not None:
            out.append((start, last_t))
        return out

    def first_data_time(self) -> Optional[float]:
        for e in self.events:
            if e.kind == "data-send":
                return e.time
        return None

    def last_ack_time(self) -> Optional[float]:
        t = None
        for e in self.events:
            if e.kind == "ack-recv":
                t = e.time
        return t

    def highest_seq_curve(self) -> List[tuple]:
        """(time, highest sequence number sent so far) step curve —
        exactly what the paper plots in Figs 11-27."""
        out = []
        hi = 0
        for e in self.events:
            if e.kind == "data-send":
                end = e.seq + e.length
                if end > hi:
                    hi = end
                out.append((e.time, hi))
        return out

    def __len__(self) -> int:
        return len(self.events)


class _NullTrace(ConnectionTrace):
    """A trace that records nothing.

    Connections nobody asked to trace (server-side accepts, depot
    upstream legs) used to allocate a full :class:`ConnectionTrace`
    and append a record per segment — megabytes of garbage per bulk
    run that no analysis ever read. They now share this singleton:
    every query behaves like an empty trace, every recording method is
    a no-op. Kept as a subclass so ``conn.trace`` still answers the
    whole :class:`ConnectionTrace` API.
    """

    def _append(self, event: TraceEvent) -> None:  # pragma: no cover
        pass

    def data_send(self, time: float, seq: int, length: int, retransmit: bool) -> None:
        pass

    def ack_recv(self, time: float, ack: int) -> None:
        pass

    def rtt_sample(self, time: float, rtt: float) -> None:
        pass

    def cwnd_sample(self, time: float, cwnd: float, ssthresh: float = 0.0) -> None:
        pass

    def ctl_send(self, time: float, what: str) -> None:
        pass


#: Shared no-op trace used by untraced connections.
NULL_TRACE = _NullTrace(label="<untraced>")
