"""Socket-style API over :class:`~repro.tcp.connection.TcpConnection`.

:class:`TcpStack` is the per-host TCP entity: it registers as the
host's ``"tcp"`` protocol handler, demultiplexes segments to
connections by ``(local port, remote host, remote port)``, spawns
passive connections for listeners, allocates ephemeral ports and
initial sequence numbers, and answers segments for nonexistent
connections with RST.

:class:`SimSocket` is the application handle — the analogue of the BSD
socket interface the paper exposes LSL through, but callback-driven
because everything lives in one event loop:

    stack = TcpStack(net.host("ucsb"))
    sock = stack.socket()
    sock.connect(("uiuc", 5000), on_connected=lambda: ...)
    sock.on_readable = lambda: ...
    sock.send(b"...") / sock.send_virtual(1 << 20)
    sock.close()
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.node import Host
from repro.net.packet import IP_HEADER_BYTES, PROTO_TCP, Packet, recycle_packet
from repro.tcp.buffers import StreamChunk
from repro.tcp.connection import TcpConnection, TcpError
from repro.tcp.options import TcpOptions
from repro.tcp.segment import FLAG_ACK, FLAG_RST, Segment, recycle_segment
from repro.tcp.trace import ConnectionTrace

ConnKey = Tuple[int, str, int]  # (local port, remote host, remote port)

EPHEMERAL_BASE = 32768


class TcpStack:
    """Per-host TCP: demux, port allocation, RST generation."""

    def __init__(self, host: Host, default_options: Optional[TcpOptions] = None) -> None:
        self.host = host
        self.net = host.net
        self.default_options = default_options or TcpOptions()
        self.connections: Dict[ConnKey, TcpConnection] = {}
        self.listeners: Dict[int, "SimSocket"] = {}
        self._next_port = EPHEMERAL_BASE
        self._iss_rng = self.net.rng.stream(f"tcp-iss:{host.name}")
        host.register_protocol(PROTO_TCP, self)

    # -- allocation -----------------------------------------------------

    def next_iss(self) -> int:
        return self._iss_rng.randrange(1, 1 << 31)

    def allocate_port(self) -> int:
        for _ in range(65536):
            port = self._next_port
            self._next_port += 1
            if self._next_port >= 65536:
                self._next_port = EPHEMERAL_BASE
            if port not in self.listeners and not any(
                key[0] == port for key in self.connections
            ):
                return port
        raise TcpError("out of ephemeral ports")

    # -- socket factory -----------------------------------------------------

    def socket(self, options: Optional[TcpOptions] = None) -> "SimSocket":
        return SimSocket(self, options or self.default_options)

    # -- demux (ProtocolHandler interface) -----------------------------------

    def handle_packet(self, packet: Packet) -> None:
        seg: Segment = packet.payload
        key = (seg.dst_port, packet.src, seg.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            # The packet's journey ends here and the segment dies once
            # the connection has processed it: recycle both (nothing in
            # segment_arrived retains either object).
            recycle_packet(packet)
            conn.segment_arrived(seg)
            recycle_segment(seg)
            return
        listener = self.listeners.get(seg.dst_port)
        if listener is not None and seg.syn and not seg.ack_flag:
            conn = listener._spawn_passive(packet.src, seg)
            if conn is not None:
                self.connections[key] = conn
                conn.open_passive(seg)
            return
        # no home for this segment: RST (unless it *is* an RST)
        if not seg.rst:
            self._send_rst(packet.src, seg)

    def _send_rst(self, remote_host: str, seg: Segment) -> None:
        if seg.ack_flag:
            rst = Segment(seg.dst_port, seg.src_port, seg.ack, 0, FLAG_RST, 0)
        else:
            rst = Segment(
                seg.dst_port,
                seg.src_port,
                0,
                seg.end_seq,
                FLAG_RST | FLAG_ACK,
                0,
            )
        pkt = Packet(
            self.host.name,
            remote_host,
            PROTO_TCP,
            rst,
            rst.wire_bytes + IP_HEADER_BYTES,
        )
        self.host.send(pkt)

    # -- connection lifecycle callbacks ---------------------------------------

    def register_connection(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_host, conn.remote_port)
        if key in self.connections:
            raise TcpError(f"connection {key} already exists")
        self.connections[key] = conn

    def connection_established(self, conn: TcpConnection) -> None:
        """Called by passive connections completing their handshake."""
        listener = self.listeners.get(conn.local_port)
        if listener is not None:
            listener._passive_established(conn)
        else:
            # listener closed while the handshake was in flight
            conn.abort(TcpError("listener closed during handshake"))

    def connection_closed(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_host, conn.remote_port)
        existing = self.connections.get(key)
        if existing is conn:
            del self.connections[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TcpStack {self.host.name} conns={len(self.connections)} "
            f"listeners={sorted(self.listeners)}>"
        )


class SimSocket:
    """Application-facing socket handle (connected or listening)."""

    def __init__(self, stack: TcpStack, options: TcpOptions) -> None:
        self.stack = stack
        self.options = options
        self.conn: Optional[TcpConnection] = None
        # listening state
        self.listen_port: Optional[int] = None
        self._on_accept: Optional[Callable[["SimSocket"], None]] = None
        self._trace_factory: Optional[Callable[[], ConnectionTrace]] = None
        self._pending: Dict[TcpConnection, "SimSocket"] = {}
        # user callbacks (proxied onto the connection once it exists)
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_peer_fin: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[Optional[Exception]], None]] = None

    # -- client side ----------------------------------------------------------

    def connect(
        self,
        address: Tuple[str, int],
        on_connected: Optional[Callable[[], None]] = None,
        trace: Optional[ConnectionTrace] = None,
        local_port: Optional[int] = None,
    ) -> None:
        """Begin an active open to ``(host, port)``."""
        if self.conn is not None or self.listen_port is not None:
            raise TcpError("socket already in use")
        remote_host, remote_port = address
        port = local_port if local_port is not None else self.stack.allocate_port()
        conn = TcpConnection(
            self.stack, port, remote_host, remote_port, self.options, trace
        )
        self._wire(conn)
        conn.on_connected = on_connected
        self.stack.register_connection(conn)
        self.conn = conn
        conn.open_active()

    # -- server side ---------------------------------------------------------------

    def listen(
        self,
        port: int,
        on_accept: Callable[["SimSocket"], None],
        trace_factory: Optional[Callable[[], ConnectionTrace]] = None,
    ) -> None:
        """Listen on ``port``; ``on_accept`` receives connected sockets."""
        if self.conn is not None or self.listen_port is not None:
            raise TcpError("socket already in use")
        if port in self.stack.listeners:
            raise TcpError(f"port {port} already listening")
        self.listen_port = port
        self._on_accept = on_accept
        self._trace_factory = trace_factory
        self.stack.listeners[port] = self

    def _spawn_passive(self, remote_host: str, syn: Segment) -> Optional[TcpConnection]:
        trace = self._trace_factory() if self._trace_factory else None
        conn = TcpConnection(
            self.stack, self.listen_port, remote_host, syn.src_port, self.options, trace
        )
        child = SimSocket(self.stack, self.options)
        child.conn = conn
        child._wire(conn)
        self._pending[conn] = child
        return conn

    def _passive_established(self, conn: TcpConnection) -> None:
        child = self._pending.pop(conn, None)
        if child is None:
            # handshake raced a listener close/reopen; nobody will
            # ever accept this connection, so RST it rather than leak
            conn.abort(TcpError("listener closed during handshake"))
            return
        if self._on_accept is not None:
            self._on_accept(child)

    def close_listener(self) -> None:
        """Stop accepting new connections.

        Half-open handshakes are aborted: once the listener is gone no
        one will ever accept them, and leaving them to complete would
        strand the peer on an established-but-unserviced connection.
        """
        if self.listen_port is not None:
            self.stack.listeners.pop(self.listen_port, None)
            self.listen_port = None
        for conn in list(self._pending):
            conn.abort(TcpError("listener closed during handshake"))
        self._pending.clear()

    # -- shared plumbing -------------------------------------------------------------

    def _wire(self, conn: TcpConnection) -> None:
        conn.on_readable = self._readable
        conn.on_writable = self._writable
        conn.on_peer_fin = self._peer_fin
        conn.on_close = self._closed

    def _readable(self) -> None:
        if self.on_readable:
            self.on_readable()

    def _writable(self) -> None:
        if self.on_writable:
            self.on_writable()

    def _peer_fin(self) -> None:
        if self.on_peer_fin:
            self.on_peer_fin()

    def _closed(self, error: Optional[Exception]) -> None:
        if self.on_close:
            self.on_close(error)

    # -- data path ---------------------------------------------------------------------

    def send(self, data: bytes) -> int:
        self._require_conn()
        return self.conn.send(data)

    def send_virtual(self, nbytes: int) -> int:
        self._require_conn()
        return self.conn.send_virtual(nbytes)

    def recv(self, max_bytes: Optional[int] = None) -> List[StreamChunk]:
        self._require_conn()
        return self.conn.recv(max_bytes)

    def recv_bytes(self, max_bytes: Optional[int] = None) -> bytes:
        """Read and concatenate only-real data (raises on virtual chunks);
        convenience for control-channel reads like the LSL header."""
        parts = []
        for chunk in self.recv(max_bytes):
            if chunk.data is None:
                raise TcpError("virtual data in recv_bytes()")
            parts.append(chunk.data)
        return b"".join(parts)

    @property
    def readable_bytes(self) -> int:
        self._require_conn()
        return self.conn.readable_bytes

    @property
    def send_space(self) -> int:
        self._require_conn()
        return self.conn.send_buffer.free_space

    @property
    def peer_closed(self) -> bool:
        self._require_conn()
        return self.conn.peer_closed

    @property
    def connected(self) -> bool:
        return self.conn is not None and self.conn.established_at is not None

    @property
    def closed(self) -> bool:
        return self.conn is not None and self.conn.state.is_terminal

    @property
    def trace(self) -> ConnectionTrace:
        self._require_conn()
        return self.conn.trace

    def close(self) -> None:
        if self.listen_port is not None:
            self.close_listener()
        elif self.conn is not None:
            self.conn.close()

    def abort(self) -> None:
        if self.conn is not None:
            self.conn.abort()

    def _require_conn(self) -> None:
        if self.conn is None:
            raise TcpError("socket not connected")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.listen_port is not None:
            return f"<SimSocket listening:{self.listen_port}>"
        if self.conn is not None:
            return f"<SimSocket {self.conn!r}>"
        return "<SimSocket unbound>"
