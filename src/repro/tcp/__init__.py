"""A from-scratch TCP implementation over :mod:`repro.net`.

Implements the congestion-control machinery the paper's analysis
(Sections V–VI) attributes the LSL effect to:

- three-way handshake and orderly FIN teardown,
- Jacobson/Karn RTT estimation with exponential RTO backoff
  (:mod:`repro.tcp.rtt`),
- slow start, congestion avoidance, fast retransmit, and fast
  recovery in Tahoe / Reno / NewReno flavours
  (:mod:`repro.tcp.congestion`),
- receiver flow control with delayed ACKs and out-of-order
  reassembly (:mod:`repro.tcp.buffers`),
- a non-blocking, callback-driven socket API
  (:mod:`repro.tcp.sockets`), and
- per-connection packet tracing equivalent to the paper's
  sender-side ``tcpdump`` captures (:mod:`repro.tcp.trace`).

The byte stream is modelled as ranges: applications may send real
``bytes`` (used by LSL for its wire header and digests) or *virtual*
bytes (length-only bulk payload), so multi-hundred-megabyte transfers
cost memory proportional to the in-flight window only.
"""

from repro.tcp.options import TcpOptions
from repro.tcp.segment import Segment, FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN
from repro.tcp.rtt import RttEstimator
from repro.tcp.congestion import (
    CongestionControl,
    NewReno,
    Reno,
    Tahoe,
    make_congestion_control,
)
from repro.tcp.buffers import ReceiveBuffer, SendBuffer, StreamChunk
from repro.tcp.state import TcpState
from repro.tcp.connection import TcpConnection, TcpError, ConnectionReset
from repro.tcp.sockets import SimSocket, TcpStack
from repro.tcp.trace import NULL_TRACE, ConnectionTrace, TraceEvent

__all__ = [
    "TcpOptions",
    "Segment",
    "FLAG_SYN",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_RST",
    "RttEstimator",
    "CongestionControl",
    "Tahoe",
    "Reno",
    "NewReno",
    "make_congestion_control",
    "SendBuffer",
    "ReceiveBuffer",
    "StreamChunk",
    "TcpState",
    "TcpConnection",
    "TcpError",
    "ConnectionReset",
    "SimSocket",
    "TcpStack",
    "ConnectionTrace",
    "TraceEvent",
    "NULL_TRACE",
]
