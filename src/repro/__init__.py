"""repro — a reproduction of *The Logistical Session Layer* (Swany & Wolski).

The package implements, from scratch:

- a deterministic discrete-event simulation kernel (:mod:`repro.sim`),
- a packet network substrate with links, queues, loss models, hosts,
  routers and static routing (:mod:`repro.net`),
- a TCP implementation with Tahoe/Reno/NewReno congestion control,
  Jacobson/Karn RTT estimation and a BSD-socket-like API
  (:mod:`repro.tcp`),
- the paper's contribution, the Logistical Session Layer: sessions
  carried over cascaded TCP connections through intermediate depots
  (:mod:`repro.lsl`),
- NWS-style forecasting and depot/path planning (:mod:`repro.logistics`),
- packet-trace analysis mirroring the paper's methodology
  (:mod:`repro.analysis`),
- the paper's experimental campaign (:mod:`repro.experiments`), and
- a real-socket prototype of the ``lsd`` depot daemon
  (:mod:`repro.sockets`).

Quickstart
----------

>>> from repro.experiments import scenarios, transfer
>>> scen = scenarios.case1_uiuc_via_denver(seed=1)
>>> direct = transfer.run_direct_transfer(scen, nbytes=1 << 20)
>>> lsl = transfer.run_lsl_transfer(scen, nbytes=1 << 20)
>>> lsl.throughput_mbps > 0 and direct.throughput_mbps > 0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
