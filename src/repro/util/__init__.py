"""Shared utilities (interval arithmetic, unit formatting)."""

from repro.util.intervals import IntervalSet
from repro.util.units import fmt_bytes, fmt_rate, parse_size

__all__ = ["IntervalSet", "fmt_bytes", "fmt_rate", "parse_size"]
