"""Size/rate formatting and parsing helpers for reports and CLIs."""

from __future__ import annotations

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text: str) -> int:
    """Parse a human size: ``"64K"``, ``"4M"``, ``"1G"``, ``"512"``.

    Suffixes are binary (K=1024) to match the paper's transfer sizes.
    """
    s = text.strip().lower()
    if not s:
        raise ValueError("empty size string")
    if s[-1] in ("b",):
        s = s[:-1]
    mult = 1
    if s and s[-1] in _SUFFIXES:
        mult = _SUFFIXES[s[-1]]
        s = s[:-1]
    try:
        value = float(s)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    n = int(value * mult)
    if n < 0:
        raise ValueError(f"negative size {text!r}")
    return n


def fmt_bytes(n: int) -> str:
    """Human-readable byte count: ``"64K"``, ``"4M"``, ``"1.5G"``."""
    if n < 1024:
        return f"{n}B"
    for suffix, mult in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if n >= mult:
            val = n / mult
            return f"{val:.0f}{suffix}" if val == int(val) else f"{val:.1f}{suffix}"
    return f"{n}B"  # pragma: no cover - unreachable


def fmt_rate(bps: float) -> str:
    """Human-readable bit rate: ``"4.2 Mbit/s"``."""
    for suffix, mult in (("Gbit/s", 1e9), ("Mbit/s", 1e6), ("Kbit/s", 1e3)):
        if bps >= mult:
            return f"{bps / mult:.2f} {suffix}"
    return f"{bps:.0f} bit/s"
