"""Half-open integer interval sets.

Used for the TCP SACK machinery on both sides of a connection: the
receiver tracks out-of-order coverage, the sender keeps the SACK
scoreboard. Intervals are ``[start, end)`` over ints; the set is kept
sorted, disjoint and coalesced, so membership and gap queries are
``O(log n)`` and mutation is ``O(log n + k)`` for ``k`` merged spans.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple

Interval = Tuple[int, int]


class IntervalSet:
    """A set of disjoint, sorted, half-open ``[start, end)`` intervals."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for s, e in intervals:
            self.add(s, e)

    # -- mutation -----------------------------------------------------------

    def add(self, start: int, end: int) -> int:
        """Insert ``[start, end)``; returns the number of *new* integers
        added (0 if the range was already fully covered)."""
        if end <= start:
            return 0
        starts, ends = self._starts, self._ends
        # find all intervals overlapping or touching [start, end)
        lo = bisect_left(ends, start)  # first interval with end >= start
        hi = bisect_right(starts, end)  # last interval with start <= end
        if lo >= hi:  # no overlap: pure insert
            starts.insert(lo, start)
            ends.insert(lo, end)
            return end - start
        covered = sum(
            min(ends[i], end) - max(starts[i], start)
            for i in range(lo, hi)
            if min(ends[i], end) > max(starts[i], start)
        )
        new_start = min(start, starts[lo])
        new_end = max(end, ends[hi - 1])
        del starts[lo:hi]
        del ends[lo:hi]
        starts.insert(lo, new_start)
        ends.insert(lo, new_end)
        return (end - start) - covered

    def discard_below(self, point: int) -> None:
        """Remove all coverage strictly below ``point``."""
        starts, ends = self._starts, self._ends
        i = bisect_right(ends, point)  # intervals with end <= point: drop
        if i:
            del starts[:i]
            del ends[:i]
        if starts and starts[0] < point:
            starts[0] = point

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        return iter(zip(self._starts, self._ends))

    def __contains__(self, point: int) -> bool:
        i = bisect_right(self._starts, point) - 1
        return i >= 0 and point < self._ends[i]

    def covers(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` is entirely covered."""
        if end <= start:
            return True
        i = bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end and self._starts[i] <= start

    def covered_within(self, start: int, end: int) -> int:
        """Number of covered integers inside ``[start, end)``."""
        if end <= start:
            return 0
        total = 0
        i = max(0, bisect_right(self._ends, start))
        while i < len(self._starts) and self._starts[i] < end:
            total += max(
                0, min(self._ends[i], end) - max(self._starts[i], start)
            )
            i += 1
        return total

    @property
    def total(self) -> int:
        """Total covered integers."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def min(self) -> int:
        if not self._starts:
            raise ValueError("empty IntervalSet")
        return self._starts[0]

    @property
    def max(self) -> int:
        if not self._ends:
            raise ValueError("empty IntervalSet")
        return self._ends[-1]

    def first_gap(self, start: int, end: int) -> Interval | None:
        """First maximal uncovered run within ``[start, end)``, or None."""
        if end <= start:
            return None
        pos = start
        i = bisect_right(self._ends, start)
        while pos < end:
            if i >= len(self._starts) or self._starts[i] >= end:
                return (pos, end)
            if self._starts[i] > pos:
                return (pos, min(self._starts[i], end))
            pos = self._ends[i]
            i += 1
        return None

    def gaps(self, start: int, end: int) -> Iterator[Interval]:
        """All maximal uncovered runs within ``[start, end)``."""
        pos = start
        i = bisect_right(self._ends, start)
        while pos < end:
            if i >= len(self._starts) or self._starts[i] >= end:
                yield (pos, end)
                return
            if self._starts[i] > pos:
                yield (pos, min(self._starts[i], end))
            pos = max(pos, self._ends[i])
            i += 1
        return

    def intervals(self) -> List[Interval]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"[{s},{e})" for s, e in self)
        return f"IntervalSet({body})"
