#!/usr/bin/env python
"""Session-layer framing: parallel streams and multi-path sessions.

The paper's Section VII names "multi-path performance optimizations
and parallel TCP streams" as the generalization that session-layer
framing would enable. This example runs the four strategies on one
topology with two disjoint POP paths:

  1. direct TCP                      (baseline)
  2. LSL via one depot               (the paper)
  3. 4 parallel direct streams      (PSockets-style striping)
  4. striped over two depot paths    (multi-path LSL)

Run:  python examples/parallel_multipath.py
"""

from repro.analysis.stats import mean
from repro.experiments.transfer import run_direct_transfer, run_lsl_transfer
from repro.lsl import Depot, StripedClient, StripedLslServer
from repro.net import BernoulliLoss, Network
from repro.tcp import TcpOptions, TcpStack
from repro.util.units import fmt_bytes

SIZE = 4 << 20
SEEDS = (1, 2, 3)
OPTS = TcpOptions(initial_ssthresh=64 * 1024)


def build(seed):
    net = Network(seed=seed)
    for h in ("src", "dst", "d-north", "d-south"):
        net.add_host(h)
    for r in ("north", "south"):
        net.add_router(r)
    net.add_link("src", "north", 100e6, 14.0, BernoulliLoss(3e-4))
    net.add_link("north", "dst", 100e6, 15.0, BernoulliLoss(1e-4))
    net.add_link("src", "south", 100e6, 22.0, BernoulliLoss(3e-4))
    net.add_link("south", "dst", 100e6, 23.0, BernoulliLoss(1e-4))
    net.add_link("north", "d-north", 622e6, 1.0)
    net.add_link("south", "d-south", 622e6, 1.0)
    net.finalize()
    stacks = {h: TcpStack(net.host(h), OPTS)
              for h in ("src", "dst", "d-north", "d-south")}
    Depot(stacks["d-north"], 4000, tcp_options=OPTS)
    Depot(stacks["d-south"], 4000, tcp_options=OPTS)
    return net, stacks


def run_striped(routes, seed):
    net, stacks = build(seed)
    done = {}

    def on_session(sess):
        sess.on_complete = lambda s: done.update(t=net.sim.now, split=None)

    StripedLslServer(stacks["dst"], 5000, on_session)
    client = StripedClient(stacks["src"], routes, payload_length=SIZE)
    net.sim.run(until=600.0)
    return SIZE * 8 / done["t"] / 1e6, client.per_sublink_bytes()


def main() -> None:
    from repro.experiments.scenarios import LinkSpec, Scenario

    scen = Scenario(
        name="dual-pop",
        description="two disjoint depot paths",
        client="src",
        server="dst",
        depots=("d-north",),
        extra_hosts=("d-south",),
        routers=("north", "south"),
        tcp_options=OPTS,
        links=(
            LinkSpec("src", "north", 100e6, 14.0, BernoulliLoss(3e-4)),
            LinkSpec("north", "dst", 100e6, 15.0, BernoulliLoss(1e-4)),
            LinkSpec("src", "south", 100e6, 22.0, BernoulliLoss(3e-4)),
            LinkSpec("south", "dst", 100e6, 23.0, BernoulliLoss(1e-4)),
            LinkSpec("north", "d-north", 622e6, 1.0),
            LinkSpec("south", "d-south", 622e6, 1.0),
        ),
    )

    print(f"transfer: {fmt_bytes(SIZE)}, mean of {len(SEEDS)} runs\n")
    direct = mean(
        [run_direct_transfer(scen, SIZE, seed=s).throughput_mbps for s in SEEDS]
    )
    lsl = mean(
        [run_lsl_transfer(scen, SIZE, seed=s).throughput_mbps for s in SEEDS]
    )
    psock = mean([run_striped([[("dst", 5000)]] * 4, s)[0] for s in SEEDS])
    multi_runs = [
        run_striped(
            [
                [("d-north", 4000), ("dst", 5000)],
                [("d-south", 4000), ("dst", 5000)],
            ],
            s,
        )
        for s in SEEDS
    ]
    multi = mean([m for m, _ in multi_runs])
    split = multi_runs[0][1]

    rows = [
        ("direct TCP", direct),
        ("LSL via one depot", lsl),
        ("4 parallel streams (PSockets)", psock),
        ("multi-path via two depots", multi),
    ]
    for name, mbps in rows:
        print(f"  {name:>30}: {mbps:6.2f} Mbit/s  ({mbps / direct:4.2f}x)")
    print(
        f"\n  multi-path stripe split (north/south): "
        f"{fmt_bytes(split[0])} / {fmt_bytes(split[1])} — the faster "
        f"path pulled more stripes, no scheduler needed"
    )


if __name__ == "__main__":
    main()
