#!/usr/bin/env python
"""Disconnected endpoints: sender and receiver never online together.

Section III claims "the ultimate sending and receiving ports need not
exist at the same time". Here a field sensor uploads its day's data to
a store-and-forward depot and disconnects; the lab server only comes
up later, the depot delivers with retry/backoff, and the end-to-end
MD5 — computed by the sensor, verified by the lab — still holds. The
depot never needs to be trusted with integrity.

Run:  python examples/disconnected_delivery.py
"""

from repro.lsl import StoreForwardDepot, lsl_connect
from repro.lsl.server import LslServer
from repro.net import Network
from repro.tcp import TcpStack
from repro.util.units import fmt_bytes

SIZE = 2 << 20


def main() -> None:
    net = Network(seed=13)
    for h in ("sensor", "depot", "lab"):
        net.add_host(h)
    net.add_link("sensor", "depot", 10e6, 25.0)   # slow field uplink
    net.add_link("depot", "lab", 100e6, 5.0)
    net.finalize()
    stacks = {h: TcpStack(net.host(h)) for h in ("sensor", "depot", "lab")}

    depot = StoreForwardDepot(stacks["depot"], 4000, retention_s=600.0)

    # t=0: the sensor uploads and disconnects. The lab is NOT running.
    conn = lsl_connect(
        stacks["sensor"],
        [("depot", 4000), ("lab", 5000)],
        payload_length=SIZE,
        sync=False,  # nobody will ack end-to-end; fire and forget
    )
    pending = [SIZE]

    def pump():
        if pending[0] > 0:
            pending[0] -= conn.send_virtual(pending[0])
            if pending[0] == 0:
                conn.finish()

    conn.on_writable = pump
    conn._user_on_connected = pump

    net.sim.run(until=10.0)
    print(f"t={net.sim.now:5.1f}s  sensor uploaded {fmt_bytes(SIZE)} and went "
          f"to sleep; depot holds {fmt_bytes(depot.spooled_bytes_total)} "
          f"({depot.pending_sessions} pending session)")
    print(f"         depot has already tried the lab "
          f"{depot.sessions[0]._attempts} time(s): connection refused")

    # t=60: the lab comes online
    completed = []

    def lab_up():
        def on_session(c):
            c.on_readable = lambda: c.recv()
            c.on_complete = completed.append

        LslServer(stacks["lab"], 5000, on_session)
        print(f"t={net.sim.now:5.1f}s  lab server started")

    net.sim.schedule_at(60.0, lab_up)
    net.sim.run(until=300.0)

    result = completed[0]
    print(f"t={result and net.sim.now:5.1f}s  (sim end)")
    print(f"\ndelivered: {fmt_bytes(result.payload_received)}; "
          f"MD5 verified against the sensor's digest: {result.digest_ok}")
    print(f"depot stats: {depot.stats}")


if __name__ == "__main__":
    main()
