#!/usr/bin/env python
"""Quickstart: the LSL effect in one page.

Builds the paper's Case-1 path (UCSB -> UIUC with a depot at the
Denver POP), runs the same 4 MB transfer directly over TCP and through
the LSL cascade, and prints the comparison — plus what the depot
planner would have predicted beforehand.

Run:  python examples/quickstart.py
"""

from repro.experiments.scenarios import case1_uiuc_via_denver
from repro.experiments.transfer import run_direct_transfer, run_lsl_transfer
from repro.logistics.monitor import NetworkMonitor
from repro.logistics.planner import DepotPlanner
from repro.util.units import fmt_bytes, fmt_rate

SIZE = 4 << 20  # 4 MB
SEEDS = (1, 2, 3)


def main() -> None:
    scenario = case1_uiuc_via_denver()
    print(f"scenario: {scenario.description}")
    print(f"transfer: {fmt_bytes(SIZE)}, {len(SEEDS)} iterations\n")

    # what does the planner predict, before measuring anything?
    env = scenario.build(seed=0)
    planner = DepotPlanner(NetworkMonitor(env.net), list(scenario.depots))
    for plan in planner.enumerate_routes(scenario.client, scenario.server, SIZE):
        print(f"  planner: {plan.describe()}")
    print()

    # now measure, the paper's way: wall clock from connect to verified
    # delivery, averaged over iterations
    direct = [run_direct_transfer(scenario, SIZE, seed=s) for s in SEEDS]
    lsl = [run_lsl_transfer(scenario, SIZE, seed=s) for s in SEEDS]

    d_bps = sum(r.throughput_bps for r in direct) / len(direct)
    l_bps = sum(r.throughput_bps for r in lsl) / len(lsl)

    print(f"  direct TCP : {fmt_rate(d_bps)}")
    print(f"  LSL cascade: {fmt_rate(l_bps)}  (digest verified: "
          f"{all(r.digest_ok for r in lsl)})")
    print(f"  gain       : {100.0 * (l_bps / d_bps - 1.0):+.0f}%")

    # why: each sublink's RTT is about half the end-to-end RTT
    from repro.analysis.rtt import average_rtt

    e2e = average_rtt(direct[0].client_trace)
    s1 = average_rtt(lsl[0].client_trace)
    s2 = average_rtt(lsl[0].sublink_traces[0])
    print(
        f"\n  RTTs: end-to-end {e2e * 1e3:.0f} ms; "
        f"sublinks {s1 * 1e3:.0f} + {s2 * 1e3:.0f} ms "
        f"(TCP's window opens per-RTT: shorter sublinks react faster)"
    )


if __name__ == "__main__":
    main()
