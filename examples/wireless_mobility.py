#!/usr/bin/env python
"""Wireless edge + session mobility.

Two of Section III's promises in one scenario:

1. A mobile node receives a large file over 802.11b; the LSL depot at
   the network edge gateways the long wired path into a short wireless
   sublink (the paper's Case 3, ~13% faster).
2. Mid-transfer the mobile node "roams": its transport connection dies
   and a new sublink re-attaches to the same session id — the server
   never notices an address change, and the end-to-end MD5 still
   verifies.

Run:  python examples/wireless_mobility.py
"""

from repro.experiments.scenarios import case3_wireless_utk
from repro.experiments.transfer import run_direct_transfer, run_lsl_transfer
from repro.lsl.client import lsl_connect, lsl_rebind
from repro.lsl.server import LslServer
from repro.util.units import fmt_bytes, fmt_rate

SIZE = 8 << 20


def part1_throughput() -> None:
    print("part 1: wireless edge throughput (paper Case 3)\n")
    scenario = case3_wireless_utk()
    d = run_direct_transfer(scenario, SIZE, seed=4)
    l = run_lsl_transfer(scenario, SIZE, seed=4)
    print(f"  direct TCP : {fmt_rate(d.throughput_bps)}")
    print(f"  LSL gateway: {fmt_rate(l.throughput_bps)} "
          f"({100 * (l.throughput_mbps / d.throughput_mbps - 1):+.0f}%)")
    print("  (the *wired* sublink is the bottleneck — the paper calls"
          " this ironic)\n")


def part2_mobility() -> None:
    print("part 2: roaming mid-transfer (session rebind)\n")
    scenario = case3_wireless_utk()
    env = scenario.build(seed=9)
    net = env.net

    done = {}

    def on_session(conn):
        conn.on_readable = lambda: conn.recv()
        conn.on_complete = lambda c: done.update(
            t=net.sim.now, digest=c.digest_ok, rebinds=True
        )

    server = LslServer(env.stacks[scenario.server], 5000, on_session)

    # the mobile node is the *sender* here (e.g. uploading sensor data)
    half = SIZE // 2
    conn = lsl_connect(
        env.stacks[scenario.client],
        [(scenario.server, 5000)],
        payload_length=SIZE,
    )
    sent = {"n": 0}

    def pump_half():
        if sent["n"] < half:
            sent["n"] += conn.send_virtual(half - sent["n"])

    conn.on_writable = pump_half
    conn._user_on_connected = pump_half
    net.sim.run(until=60.0)
    print(f"  sent {fmt_bytes(sent['n'])} over the first sublink, then: roam!")

    # the old transport dies (address change while roaming)
    conn.abort()
    net.sim.run(until=61.0)

    # re-attach to the same session from the "new" location; the
    # client carries its digest state across the transport change
    conn2 = lsl_rebind(
        env.stacks[scenario.client],
        [(scenario.server, 5000)],
        session_id=conn.session_id,
        resume_offset=half,
        payload_length=SIZE,
        digest_state=conn.digest,
    )

    def pump_rest():
        rem = conn2.remaining
        if rem and rem > 0:
            conn2.send_virtual(rem)
        if conn2.remaining == 0:
            conn2.finish()
            conn2.on_writable = None

    conn2.on_writable = pump_rest
    conn2._user_on_connected = pump_rest
    net.sim.run(until=600.0)

    record = server.registry.get(conn.session_id)
    print(f"  session {conn.session_id.hex()[:8]}… resumed at offset "
          f"{fmt_bytes(half)}; rebinds recorded: {record.rebinds}")
    print(f"  complete at t={done['t']:.1f}s, end-to-end MD5 verified: "
          f"{done['digest']}")


if __name__ == "__main__":
    part1_throughput()
    part2_mobility()
