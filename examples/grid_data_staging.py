#!/usr/bin/env python
"""Grid data staging: planner-driven depot selection over many sites.

The paper's motivating workload: a Computational Grid application must
move result files between sites. This example builds a small
multi-site topology (a west-coast cluster pushing to three consumers),
lets the NWS-style monitor estimate every path, and has the planner
pick — per destination and file size — whether to go direct or via
which depot. It then *validates* each decision by running both.

Run:  python examples/grid_data_staging.py
"""

from repro.experiments.scenarios import DEPOT_PORT, SERVER_PORT
from repro.lsl.depot import Depot
from repro.lsl.server import LslServer
from repro.lsl.client import lsl_connect
from repro.logistics.monitor import NetworkMonitor
from repro.logistics.planner import DepotPlanner
from repro.net.loss import BernoulliLoss
from repro.net.topology import Network
from repro.tcp.sockets import TcpStack
from repro.util.units import fmt_bytes, fmt_rate

SITES = ["ncsa", "anl", "psc"]  # consumers
FILES = [("checkpoint.dat", 32 << 20), ("params.json", 64 << 10)]


def build_grid(seed: int):
    """UCSB origin, two backbone POPs with depots, three consumer sites."""
    net = Network(seed=seed)
    net.add_host("ucsb")
    for s in SITES:
        net.add_host(s)
    net.add_host("denver-depot")
    net.add_host("chicago-depot")
    net.add_router("denver")
    net.add_router("chicago")
    net.add_link("ucsb", "denver", 100e6, 13.5, BernoulliLoss(2e-4))
    net.add_link("denver", "chicago", 100e6, 12.0, BernoulliLoss(8e-5))
    net.add_link("chicago", "ncsa", 100e6, 4.0, BernoulliLoss(5e-5))
    net.add_link("chicago", "anl", 100e6, 3.0, BernoulliLoss(5e-5))
    net.add_link("denver", "psc", 100e6, 18.0, BernoulliLoss(1e-4))
    net.add_link("denver", "denver-depot", 622e6, 1.0)
    net.add_link("chicago", "chicago-depot", 622e6, 1.0)
    net.finalize()
    stacks = {h: TcpStack(net.host(h)) for h in net.nodes if h in
              {"ucsb", "denver-depot", "chicago-depot", *SITES}}
    for d in ("denver-depot", "chicago-depot"):
        Depot(stacks[d], DEPOT_PORT, session_setup_delay_s=0.02)
    return net, stacks


def measure(net, stacks, dst, nbytes, route):
    """Run one LSL transfer along ``route``; return Mbit/s."""
    done = {}

    def on_session(conn):
        conn.on_readable = lambda: conn.recv()
        conn.on_complete = lambda c: done.setdefault("t", net.sim.now)

    server = LslServer(stacks[dst], SERVER_PORT, on_session)
    t0 = net.sim.now
    conn = lsl_connect(stacks["ucsb"], route, payload_length=nbytes)
    pending = [nbytes]

    def pump():
        if pending[0] > 0:
            pending[0] -= conn.send_virtual(pending[0])
            if pending[0] == 0:
                conn.finish()

    conn.on_writable = pump
    conn._user_on_connected = pump
    net.sim.run(until=t0 + 600.0)
    server.shutdown()
    if "t" not in done:
        return 0.0
    return nbytes * 8.0 / (done["t"] - t0) / 1e6


def main() -> None:
    net, stacks = build_grid(seed=11)
    monitor = NetworkMonitor(net)
    planner = DepotPlanner(monitor, ["denver-depot", "chicago-depot"])

    print("grid staging plan (origin: ucsb)\n")
    for fname, size in FILES:
        print(f"file {fname} ({fmt_bytes(size)}):")
        for dst in SITES:
            plan = planner.plan("ucsb", dst, nbytes=size)
            chosen = list(plan.hops)
            route = [(h, DEPOT_PORT) for h in chosen] + [(dst, SERVER_PORT)]
            direct_route = [(dst, SERVER_PORT)]
            got = measure(net, stacks, dst, size, route)
            base = measure(net, stacks, dst, size, direct_route)
            via = "+".join(chosen) if chosen else "direct"
            verdict = "good call" if got >= base * 0.98 else "mispredicted"
            print(
                f"  -> {dst:<5} via {via:<22} "
                f"measured {got:6.2f} vs direct {base:6.2f} Mbit/s  [{verdict}]"
            )
        print()


if __name__ == "__main__":
    main()
