#!/usr/bin/env python
"""The real artifact: ``lsd`` over genuine TCP sockets on localhost.

Starts two depot daemons and an LSL server as threads, then pushes a
file-sized payload through the two-depot cascade with end-to-end MD5
verification — the same wire format the simulator uses.

Throughput numbers printed here reflect CPython's GIL, not network
dynamics; that is exactly why the paper's *performance* figures are
reproduced on the simulator (see DESIGN.md). This demo shows the
architecture is real: unprivileged user-level processes, voluntary
use, standard TCP underneath.

Run:  python examples/real_socket_relay.py
"""

import os
import time

from repro.sockets import LslSocketClient, ThreadedDepot, ThreadedLslServer
from repro.util.units import fmt_bytes, fmt_rate

SIZE = 8 << 20


def main() -> None:
    payload = os.urandom(SIZE)
    with ThreadedLslServer() as server, ThreadedDepot() as d1, ThreadedDepot() as d2:
        route = [d1.address, d2.address, server.address]
        pretty = " -> ".join(f"{h}:{p}" for h, p in route)
        print(f"cascade: client -> {pretty}")
        print(f"payload: {fmt_bytes(SIZE)} of random bytes + MD5 trailer\n")

        t0 = time.perf_counter()
        with LslSocketClient(route, payload_length=SIZE) as conn:
            print(f"session {conn.header.session_id.hex()[:8]}… established "
                  f"(synchronous, acked through the whole cascade)")
            conn.sendall(payload)
            conn.finish()
            ok = server.wait_for_sessions(1, timeout=60)
        elapsed = time.perf_counter() - t0

        assert ok, "server did not complete the session"
        result = server.results[0]
        print(f"server received {fmt_bytes(len(result.payload))}, "
              f"digest verified: {result.digest_ok}")
        print(f"payload intact: {result.payload == payload}")
        print(f"depot 1 relayed {fmt_bytes(d1.counters.bytes_relayed)}; "
              f"depot 2 relayed {fmt_bytes(d2.counters.bytes_relayed)}")
        print(f"\nwall time {elapsed:.2f}s "
              f"({fmt_rate(SIZE * 8 / elapsed)} through two Python relays "
              f"— GIL-bound, see module docstring)")


if __name__ == "__main__":
    main()
