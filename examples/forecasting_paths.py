#!/usr/bin/env python
"""NWS-style forecasting driving depot choice under changing weather.

The paper assumes clients "have network performance information
available from a system such as the Network Weather Service". This
example shows that loop closed: a path's loss regime shifts mid-run,
the forecaster ensemble notices, and the planner's depot choice flips.

Run:  python examples/forecasting_paths.py
"""

import random

from repro.logistics.forecasting import make_nws_ensemble
from repro.logistics.models import mathis_throughput
from repro.logistics.monitor import NetworkMonitor
from repro.logistics.planner import DepotPlanner
from repro.net.loss import BernoulliLoss
from repro.net.topology import Network


def build():
    net = Network(seed=21)
    for h in ("src", "dst", "depot-a", "depot-b"):
        net.add_host(h)
    net.add_router("pop")
    net.add_link("src", "pop", 100e6, 20.0, BernoulliLoss(5e-4))
    net.add_link("pop", "dst", 100e6, 20.0, BernoulliLoss(5e-5))
    net.add_link("pop", "depot-a", 622e6, 1.0)
    net.add_link("pop", "depot-b", 622e6, 30.0)  # poor placement
    net.finalize()
    return net


def main() -> None:
    rng = random.Random(5)
    net = build()
    monitor = NetworkMonitor(net)
    planner = DepotPlanner(monitor, ["depot-a", "depot-b"], max_detour_factor=4.0)

    print("epoch  observed-loss  forecast-loss    best-member      chosen route")
    # phase 1: calm network (loss ~5e-4 on the src side), then a storm
    for epoch in range(30):
        true_p = 5e-4 if epoch < 15 else 8e-3  # congestion storm at 15
        observed = max(0.0, rng.gauss(true_p, true_p / 4))
        monitor.observe_loss("src", "dst", observed)
        monitor.observe_loss("src", "depot-a", observed * 0.9)
        monitor.observe_loss("depot-a", "dst", 5e-5)
        monitor.observe_loss("src", "depot-b", observed * 0.9)
        monitor.observe_loss("depot-b", "dst", 5e-5)
        if epoch % 5 == 4:
            plan = planner.plan("src", "dst")
            est = monitor.estimate_path("src", "dst")
            ens = monitor._loss_forecasters[("src", "dst")]
            via = ",".join(plan.hops) if plan.hops else "direct"
            print(
                f"{epoch:>5}  {observed:>12.2e}  {est.loss_rate:>12.2e}"
                f"  {ens.best_member.name:>14}  via {via}"
                f" ({plan.predicted_bps / 1e6:.1f} Mbit/s predicted)"
            )

    print("\nMathis sanity check at the storm's loss rate:")
    for rtt_ms, label in ((82.0, "direct"), (43.0, "worst sublink via depot-a")):
        bw = mathis_throughput(1460, rtt_ms / 1e3, 8e-3)
        print(f"  {label:>28}: {bw / 1e6:5.1f} Mbit/s at RTT {rtt_ms:.0f} ms")
    print("halved RTT doubles the model rate -> the depot pays off more"
          " in bad weather, which is what the planner concluded.")


if __name__ == "__main__":
    main()
